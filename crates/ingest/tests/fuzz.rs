//! Seeded randomized ingestion fuzzing (in the spirit of
//! `crates/ilp/tests/random_mips.rs`): generate random schemas and random
//! well-formed logs with noisy formatting, and assert ingestion always
//! succeeds, counts statements faithfully, and produces instances the
//! solvers accept.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use vpart_ingest::{ingest, IngestOptions};

const TYPES: &[&str] = &[
    "INT",
    "BIGINT",
    "SMALLINT",
    "DECIMAL(12,2)",
    "NUMERIC(4,4)",
    "VARCHAR(32)",
    "CHAR(9)",
    "TEXT",
    "TIMESTAMP",
    "DOUBLE PRECISION",
];

struct Gen {
    rng: StdRng,
    tables: Vec<(String, Vec<String>)>,
}

impl Gen {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_tables = rng.gen_range(1..=4);
        let tables = (0..n_tables)
            .map(|t| {
                let cols = (0..rng.gen_range(1..=8usize))
                    .map(|c| format!("t{t}_c{c}"))
                    .collect();
                (format!("tab{t}"), cols)
            })
            .collect();
        Gen { rng, tables }
    }

    fn ddl(&mut self) -> String {
        let mut out = String::new();
        for (name, cols) in self.tables.clone() {
            out.push_str(&format!("CREATE TABLE {name} (\n"));
            for (i, c) in cols.iter().enumerate() {
                let ty = TYPES[self.rng.gen_range(0..TYPES.len())];
                let constraint = match self.rng.gen_range(0..4u32) {
                    0 => " NOT NULL",
                    1 => " PRIMARY KEY",
                    2 => " DEFAULT 0",
                    _ => "",
                };
                out.push_str(&format!("  {c} {ty}{constraint}"));
                out.push_str(if i + 1 < cols.len() { ",\n" } else { "\n" });
            }
            if self.rng.gen_bool(0.3) {
                out.push_str(&format!("  , UNIQUE ({})\n", cols[0]));
            }
            out.push_str(");\n");
        }
        out
    }

    fn pick_table(&mut self) -> usize {
        self.rng.gen_range(0..self.tables.len())
    }

    fn some_cols(&mut self, t: usize) -> Vec<String> {
        let cols = self.tables[t].1.clone();
        let n = self.rng.gen_range(1..=cols.len());
        let mut picked = cols;
        picked.shuffle(&mut self.rng);
        picked.truncate(n);
        picked
    }

    fn literal(&mut self) -> String {
        match self.rng.gen_range(0..4u32) {
            0 => "?".to_string(),
            1 => format!("{}", self.rng.gen_range(0..1000u32)),
            2 => format!("{:.2}", self.rng.gen_range(0.0..100.0)),
            _ => "'some''text'".to_string(),
        }
    }

    fn predicate(&mut self, t: usize) -> String {
        let cols = self.some_cols(t);
        let parts: Vec<String> = cols
            .iter()
            .map(|c| {
                let op = ["=", "<", ">=", "<>"][self.rng.gen_range(0..4)];
                format!("{c} {op} {}", self.literal())
            })
            .collect();
        parts.join(" AND ")
    }

    /// Random casing noise: SQL keywords are case-insensitive.
    fn casing(&mut self, s: &str) -> String {
        if self.rng.gen_bool(0.5) {
            s.to_string()
        } else {
            s.to_ascii_lowercase()
        }
    }

    /// A multi-table statement (join / IN-subquery / INSERT ... SELECT).
    /// Column names are unique per table, so unqualified references stay
    /// unambiguous.
    fn multi_table_statement(&mut self, t: usize) -> String {
        let u = (t + 1 + self.rng.gen_range(0..self.tables.len() - 1)) % self.tables.len();
        let (t_name, t_cols) = self.tables[t].clone();
        let (u_name, u_cols) = self.tables[u].clone();
        match self.rng.gen_range(0..3u32) {
            0 => {
                let join_kind = ["JOIN", "INNER JOIN", "LEFT OUTER JOIN", ","]
                    [self.rng.gen_range(0..4)]
                .to_string();
                let sep = if join_kind == "," {
                    ", ".to_string()
                } else {
                    format!(" {join_kind} ")
                };
                let on = if join_kind == "," {
                    format!(" WHERE {} = {}", t_cols[0], u_cols[0])
                } else {
                    format!(" ON {} = {}", t_cols[0], u_cols[0])
                };
                format!(
                    "SELECT {}, {} FROM {t_name}{sep}{u_name}{on}",
                    self.some_cols(t).join(", "),
                    self.some_cols(u).join(", "),
                )
            }
            1 => format!(
                "SELECT {} FROM {t_name} WHERE {} IN (SELECT {} FROM {u_name} WHERE {})",
                self.some_cols(t).join(", "),
                t_cols[0],
                u_cols[0],
                self.predicate(u),
            ),
            _ => {
                let targets = self.some_cols(t);
                let sources: Vec<String> = targets
                    .iter()
                    .enumerate()
                    .map(|(i, _)| u_cols[i % u_cols.len()].clone())
                    .collect();
                format!(
                    "INSERT INTO {t_name} ({}) SELECT {} FROM {u_name} WHERE {}",
                    targets.join(", "),
                    sources.join(", "),
                    self.predicate(u),
                )
            }
        }
    }

    fn statement(&mut self) -> String {
        let t = self.pick_table();
        let table = self.tables[t].0.clone();
        if self.tables.len() >= 2 && self.rng.gen_bool(0.25) {
            let stmt = self.multi_table_statement(t);
            return format!("{stmt};");
        }
        let kind = self.rng.gen_range(0..4u32);
        let stmt = match kind {
            0 => {
                let cols = self.some_cols(t).join(", ");
                let kw = self.casing("SELECT");
                let from = self.casing("FROM");
                if self.rng.gen_bool(0.7) {
                    let wh = self.casing("WHERE");
                    format!("{kw} {cols} {from} {table} {wh} {}", self.predicate(t))
                } else {
                    format!("{kw} {cols} {from} {table}")
                }
            }
            1 => {
                let cols = self.some_cols(t);
                let vals: Vec<String> = cols.iter().map(|_| self.literal()).collect();
                format!(
                    "INSERT INTO {table} ({}) VALUES ({})",
                    cols.join(", "),
                    vals.join(", ")
                )
            }
            2 => {
                let target = self.some_cols(t)[0].clone();
                format!(
                    "UPDATE {table} SET {target} = {} WHERE {}",
                    self.literal(),
                    self.predicate(t)
                )
            }
            _ => format!("DELETE FROM {table} WHERE {}", self.predicate(t)),
        };
        let annotation = match self.rng.gen_range(0..5u32) {
            0 => format!(" -- rows={}", self.rng.gen_range(1..20u32)),
            1 => format!(" -- freq={}", self.rng.gen_range(1..100u32)),
            _ => String::new(),
        };
        format!("{stmt};{annotation}")
    }

    fn log(&mut self) -> (String, usize) {
        let mut out = String::new();
        let mut statements = 0usize;
        let blocks = self.rng.gen_range(1..=6usize);
        for b in 0..blocks {
            if self.rng.gen_bool(0.4) {
                out.push_str(&format!("BEGIN; -- txn=blk{b}\n"));
                for _ in 0..self.rng.gen_range(1..=4usize) {
                    out.push_str(&self.statement());
                    out.push('\n');
                    statements += 1;
                }
                out.push_str("COMMIT;\n");
            } else {
                for _ in 0..self.rng.gen_range(1..=3usize) {
                    out.push_str(&self.statement());
                    out.push('\n');
                    statements += 1;
                }
            }
        }
        (out, statements)
    }
}

#[test]
fn random_workloads_always_ingest() {
    for seed in 0..200u64 {
        let mut g = Gen::new(seed);
        let ddl = g.ddl();
        let (log, statements) = g.log();
        let out = ingest(&ddl, &log, &IngestOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed} failed: {e}\nDDL:\n{ddl}\nLOG:\n{log}"));
        assert_eq!(out.report.statements_seen, statements, "seed {seed}");
        assert_eq!(out.report.statements_ingested, statements, "seed {seed}");
        assert!(out.report.txns >= 1);
        assert!(out.instance.n_attrs() >= 1);
    }
}

#[test]
fn random_instances_are_solvable_and_serializable() {
    for seed in 0..25u64 {
        let mut g = Gen::new(0x5EED_0000 + seed);
        let ddl = g.ddl();
        let (log, _) = g.log();
        let out = ingest(&ddl, &log, &IngestOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));

        // Round-trip.
        let json = serde_json::to_string(&out.instance).unwrap();
        let back: vpart_model::Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(out.instance, back, "seed {seed}");

        // Solve + validate.
        let cost = vpart_core::CostConfig::default();
        let sa = vpart_core::sa::SaSolver::new(vpart_core::sa::SaConfig::fast_deterministic(seed))
            .solve(&out.instance, 2, &cost)
            .unwrap_or_else(|e| panic!("seed {seed} does not solve: {e}"));
        sa.partitioning
            .validate(&out.instance, false)
            .unwrap_or_else(|e| panic!("seed {seed} invalid partitioning: {e}"));
    }
}

impl Gen {
    /// Renders statements as a `pg_stat_statements`-shaped CSV dump with
    /// random quoting, random extra columns and occasional `txn` groups.
    fn pgss_csv(&mut self) -> (String, usize) {
        let extra = self.rng.gen_bool(0.5);
        let mut out = String::from(if extra {
            "userid,query,calls,total_exec_time,rows,txn\n"
        } else {
            "query,calls,rows,txn\n"
        });
        let n = self.rng.gen_range(1..=8usize);
        for i in 0..n {
            let stmt = self.statement();
            let stmt = stmt.trim_end_matches(';');
            // Annotation comments in the template are legal; keep the
            // generator's occasional `-- rows=` suffix out of CSV text.
            let stmt = stmt.split(" -- ").next().unwrap().replace('"', "\"\"");
            let calls = self.rng.gen_range(1..500u32);
            let rows = if self.rng.gen_bool(0.5) {
                format!("{}", self.rng.gen_range(0..2000u32))
            } else {
                String::new()
            };
            let txn = if self.rng.gen_bool(0.3) {
                format!("grp{}", self.rng.gen_range(0..3u32))
            } else {
                String::new()
            };
            if extra {
                out.push_str(&format!("7,\"{stmt}\",{calls},1.25,{rows},{txn}\n"));
            } else {
                out.push_str(&format!("\"{stmt}\",{calls},{rows},{txn}\n"));
            }
            let _ = i;
        }
        (out, n)
    }

    /// Renders statements as a `performance_schema` digest TSV dump.
    fn perf_schema_tsv(&mut self) -> (String, usize) {
        let mut out = String::from("DIGEST_TEXT\tCOUNT_STAR\tSUM_ROWS_EXAMINED\tSUM_ROWS_SENT\n");
        let n = self.rng.gen_range(1..=8usize);
        for _ in 0..n {
            let stmt = self.statement();
            let stmt = stmt.trim_end_matches(';');
            let stmt = stmt.split(" -- ").next().unwrap().replace('\t', " ");
            let count = self.rng.gen_range(1..500u32);
            let examined = self.rng.gen_range(0..5000u32);
            let sent = if self.rng.gen_bool(0.3) {
                "NULL".to_string()
            } else {
                format!("{}", self.rng.gen_range(0..2000u32))
            };
            out.push_str(&format!("{stmt}\t{count}\t{examined}\t{sent}\n"));
        }
        (out, n)
    }
}

#[test]
fn random_stats_dumps_always_ingest() {
    for seed in 0..150u64 {
        let mut g = Gen::new(0x57A7_0000 + seed);
        let ddl = g.ddl();
        let (dump, rows) = g.pgss_csv();
        let out = vpart_ingest::ingest_stats(
            &ddl,
            &dump,
            vpart_ingest::StatsFormat::PgssCsv,
            &IngestOptions::default(),
        )
        .unwrap_or_else(|e| panic!("seed {seed} failed: {e}\nDDL:\n{ddl}\nDUMP:\n{dump}"));
        assert_eq!(out.report.statements_seen, rows, "seed {seed}");
        assert_eq!(out.report.statements_ingested, rows, "seed {seed}");
        assert!(out.instance.n_txns() >= 1);
        // Sampled ingestion of the same dump: scaled frequencies, full
        // confidence coverage, still solvable input.
        let sampled = vpart_ingest::ingest_stats(
            &ddl,
            &dump,
            vpart_ingest::StatsFormat::PgssCsv,
            &IngestOptions::default().with_sample_rate(0.25),
        )
        .unwrap_or_else(|e| panic!("seed {seed} sampled failed: {e}"));
        assert_eq!(sampled.report.confidence.len(), sampled.instance.n_txns());
    }
}

#[test]
fn random_perf_schema_dumps_always_ingest() {
    for seed in 0..150u64 {
        let mut g = Gen::new(0x9E2F_0000 + seed);
        let ddl = g.ddl();
        let (dump, rows) = g.perf_schema_tsv();
        let out = vpart_ingest::ingest_stats(
            &ddl,
            &dump,
            vpart_ingest::StatsFormat::PerfSchema,
            &IngestOptions::default(),
        )
        .unwrap_or_else(|e| panic!("seed {seed} failed: {e}\nDDL:\n{ddl}\nDUMP:\n{dump}"));
        assert_eq!(out.report.statements_seen, rows, "seed {seed}");
        assert!(out.instance.n_txns() >= 1);
    }
}

#[test]
fn fuzzed_stats_garbage_never_panics() {
    // Byte-noise dumps must produce Ok or a typed error, never a panic.
    let mut rng = StdRng::seed_from_u64(0xD1_6E57);
    let schema = "CREATE TABLE t (a INT, b VARCHAR(8));";
    let pieces = [
        "query",
        "calls",
        "rows",
        "DIGEST_TEXT",
        "COUNT_STAR",
        "SELECT a FROM t",
        ",",
        "\t",
        "\n",
        "\"",
        "\"\"",
        "5",
        "-3",
        "1e308",
        "NULL",
        "often",
        "",
        "txn",
        "grp",
        "{",
        "[",
        "]",
        "}",
        ":",
        "BEGIN",
    ];
    for _ in 0..500 {
        let n = rng.gen_range(1..40usize);
        let dump: String = (0..n)
            .map(|_| pieces[rng.gen_range(0..pieces.len())])
            .collect::<Vec<_>>()
            .join("");
        for format in [
            vpart_ingest::StatsFormat::PgssCsv,
            vpart_ingest::StatsFormat::PgssJson,
            vpart_ingest::StatsFormat::PerfSchema,
        ] {
            // Either outcome is fine; what matters is that it returns.
            let _ = vpart_ingest::ingest_stats(schema, &dump, format, &IngestOptions::default());
            let _ = vpart_ingest::ingest_stats(
                schema,
                &dump,
                format,
                &IngestOptions::default().lenient(),
            );
        }
    }
}

#[test]
fn fuzzed_garbage_never_panics() {
    // Byte-noise logs must produce Ok or a typed error, never a panic.
    let mut rng = StdRng::seed_from_u64(0xBAD_F00D);
    let schema = "CREATE TABLE t (a INT, b VARCHAR(8));";
    let pieces = [
        "SELECT", "FROM", "WHERE", "t", "a", "b", "(", ")", ",", ";", "=", "*", "'x'", "1.5", "--",
        "/*", "*/", "BEGIN", "COMMIT", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "?",
        ".", "\n",
    ];
    for _ in 0..500 {
        let n = rng.gen_range(1..30usize);
        let log: String = (0..n)
            .map(|_| pieces[rng.gen_range(0..pieces.len())])
            .collect::<Vec<_>>()
            .join(" ");
        // Either outcome is fine; what matters is that it returns.
        let _ = ingest(schema, &log, &IngestOptions::default());
        let _ = ingest(schema, &log, &IngestOptions::default().lenient());
    }
}
