//! Ingested-TPC-C agreement: the `warehouse`/`district` slice of the
//! Payment transaction, expressed as DDL + SQL, must reproduce the widths
//! and access sets of the hand-built `vpart_instances::tpcc()` model.

use std::collections::BTreeSet;
use vpart_ingest::{ingest, IngestOptions};
use vpart_model::{AttrId, Instance, QueryId};

/// TPC-C §1.3 table definitions for Warehouse and District, with the
/// spec's datatypes (numerics map to their natural binary width).
const SCHEMA: &str = "\
    CREATE TABLE Warehouse (
        W_ID        INTEGER PRIMARY KEY,
        W_NAME      VARCHAR(10),
        W_STREET_1  VARCHAR(20),
        W_STREET_2  VARCHAR(20),
        W_CITY      VARCHAR(20),
        W_STATE     CHAR(2),
        W_ZIP       CHAR(9),
        W_TAX       NUMERIC(4,4),
        W_YTD       NUMERIC(12,2)
    );
    CREATE TABLE District (
        D_ID        INTEGER,
        D_W_ID      INTEGER,
        D_NAME      VARCHAR(10),
        D_STREET_1  VARCHAR(20),
        D_STREET_2  VARCHAR(20),
        D_CITY      VARCHAR(20),
        D_STATE     CHAR(2),
        D_ZIP       CHAR(9),
        D_TAX       NUMERIC(4,4),
        D_YTD       NUMERIC(12,2),
        D_NEXT_O_ID INTEGER,
        PRIMARY KEY (D_W_ID, D_ID)
    );";

/// The Payment profile's statements against those two tables (§2.5.2).
const LOG: &str = "\
    BEGIN; -- txn=Payment
    UPDATE Warehouse SET W_YTD = W_YTD + 100.0 WHERE W_ID = 1;
    SELECT W_NAME, W_STREET_1, W_STREET_2, W_CITY, W_STATE, W_ZIP FROM Warehouse WHERE W_ID = 1;
    UPDATE District SET D_YTD = D_YTD + 100.0 WHERE D_W_ID = 1 AND D_ID = 2;
    SELECT D_NAME, D_STREET_1, D_STREET_2, D_CITY, D_STATE, D_ZIP FROM District WHERE D_W_ID = 1 AND D_ID = 2;
    COMMIT;";

fn qualified_access_set(ins: &Instance, q: QueryId) -> BTreeSet<String> {
    ins.workload()
        .query(q)
        .attrs
        .iter()
        .map(|&a| ins.schema().qualified_name(a).to_ascii_uppercase())
        .collect()
}

fn query_by_name(ins: &Instance, name: &str) -> QueryId {
    ins.workload()
        .query_by_name(name)
        .unwrap_or_else(|| panic!("missing query {name}"))
}

#[test]
fn widths_match_the_hand_built_model() {
    let hand = vpart_instances::tpcc();
    let ingested =
        ingest(SCHEMA, LOG, &IngestOptions::default()).expect("TPC-C slice ingests cleanly");
    let ins = &ingested.instance;
    assert!(ingested.report.is_lossless(), "{}", ingested.report);

    for table in ["Warehouse", "District"] {
        let ht = hand.schema().table_by_name(table).unwrap();
        let it = ins.schema().table_by_name(table).unwrap();
        let hand_cols: Vec<(String, f64)> = hand
            .schema()
            .table_attrs(ht)
            .map(|a| {
                let attr = hand.schema().attr(AttrId::from_index(a));
                (attr.name.to_ascii_uppercase(), attr.width)
            })
            .collect();
        let ingested_cols: Vec<(String, f64)> = ins
            .schema()
            .table_attrs(it)
            .map(|a| {
                let attr = ins.schema().attr(AttrId::from_index(a));
                (attr.name.to_ascii_uppercase(), attr.width)
            })
            .collect();
        // Same column sets with the same widths (hand order is spec order
        // for District's D_ID/D_W_ID; compare as sets).
        let hand_set: BTreeSet<_> = hand_cols
            .iter()
            .map(|(n, w)| (n.clone(), w.to_bits()))
            .collect();
        let ing_set: BTreeSet<_> = ingested_cols
            .iter()
            .map(|(n, w)| (n.clone(), w.to_bits()))
            .collect();
        assert_eq!(hand_set, ing_set, "column/width mismatch in {table}");
    }
}

#[test]
fn payment_access_sets_match_the_hand_built_model() {
    let hand = vpart_instances::tpcc();
    let ins = ingest(SCHEMA, LOG, &IngestOptions::default())
        .unwrap()
        .instance;
    assert_eq!(ins.n_txns(), 1);
    // 2 UPDATEs (split) + 2 SELECTs = 6 modeled queries.
    assert_eq!(ins.n_queries(), 6);

    // (hand query, ingested query) correspondence.
    let pairs = [
        ("pay/warehouse_ytd/read", "Payment/0:update_warehouse/read"),
        (
            "pay/warehouse_ytd/write",
            "Payment/0:update_warehouse/write",
        ),
        ("pay/warehouse_read", "Payment/1:select_warehouse"),
        ("pay/district_ytd/read", "Payment/2:update_district/read"),
        ("pay/district_ytd/write", "Payment/2:update_district/write"),
        ("pay/district_read", "Payment/3:select_district"),
    ];
    for (hand_name, ingested_name) in pairs {
        let hq = query_by_name(&hand, hand_name);
        let iq = query_by_name(&ins, ingested_name);
        assert_eq!(
            qualified_access_set(&hand, hq),
            qualified_access_set(&ins, iq),
            "access set mismatch: {hand_name} vs {ingested_name}"
        );
        assert_eq!(
            hand.workload().query(hq).kind,
            ins.workload().query(iq).kind,
            "kind mismatch: {hand_name}"
        );
        // Both models assume single-row access for these statements, so
        // the weights W_{a,q} = w_a·f_q·n agree attribute by attribute.
        for &a in &ins.workload().query(iq).attrs {
            let name = ins.schema().qualified_name(a).to_ascii_uppercase();
            let (ht, hn) = name.split_once('.').unwrap();
            let ha = hand
                .schema()
                .attr_by_name(
                    if ht == "WAREHOUSE" {
                        "Warehouse"
                    } else {
                        "District"
                    },
                    hn,
                )
                .unwrap_or_else(|| panic!("hand model lacks {name}"));
            assert_eq!(
                hand.weight(ha, hq),
                ins.weight(a, iq),
                "weight mismatch on {name} for {hand_name}"
            );
        }
    }
}

/// TPC-C §1.3 definitions for Item and the Stock columns New-Order reads,
/// for the joined slice below.
const NO_SCHEMA: &str = "\
    CREATE TABLE Item (
        I_ID        INTEGER PRIMARY KEY,
        I_IM_ID     INTEGER,
        I_NAME      VARCHAR(24),
        I_PRICE     NUMERIC(5,2),
        I_DATA      VARCHAR(50)
    );
    CREATE TABLE Stock (
        S_I_ID      INTEGER,
        S_W_ID      INTEGER,
        S_QUANTITY  INTEGER,
        S_DIST_01   CHAR(24),
        S_DATA      VARCHAR(50),
        PRIMARY KEY (S_W_ID, S_I_ID)
    );";

/// New-Order's iterated item/stock reads (§2.4.2), expressed as one joined
/// statement instead of two per-table ones — the flattening must reproduce
/// the hand-built model's per-table access sets.
const NO_LOG: &str = "\
    BEGIN; -- txn=NewOrder
    SELECT /*+ rows=10 */ I_PRICE, I_NAME, I_DATA, S_QUANTITY, S_DIST_01, S_DATA
      FROM Item JOIN Stock ON I_ID = S_I_ID WHERE I_ID = ?;
    COMMIT;";

#[test]
fn new_order_join_slice_matches_the_hand_built_model() {
    let hand = vpart_instances::tpcc();
    let ingested = ingest(NO_SCHEMA, NO_LOG, &IngestOptions::default())
        .expect("the joined New-Order slice ingests cleanly");
    let ins = &ingested.instance;
    assert!(
        !ingested
            .report
            .skipped
            .iter()
            .any(|s| matches!(s.reason, vpart_ingest::SkipReason::Join)),
        "the join must flatten, not skip: {}",
        ingested.report
    );
    assert_eq!(ins.n_txns(), 1);
    assert_eq!(ins.n_queries(), 2, "one read per joined table");

    // The Item side reproduces the hand model's no/item_read exactly:
    // same access set (the ON column counts as a read, like the hand
    // model's I_ID) and same weights (rows=10 iterated access).
    let item = query_by_name(ins, "NewOrder/0.0:select_item");
    let hand_item = query_by_name(&hand, "no/item_read");
    assert_eq!(
        qualified_access_set(ins, item),
        qualified_access_set(&hand, hand_item),
        "Item access-set mismatch"
    );
    for &a in &ins.workload().query(item).attrs {
        let name = ins.schema().qualified_name(a).to_ascii_uppercase();
        let ha = hand
            .schema()
            .attr_by_name("Item", name.split_once('.').unwrap().1)
            .unwrap_or_else(|| panic!("hand model lacks {name}"));
        assert_eq!(
            hand.weight(ha, hand_item),
            ins.weight(a, item),
            "weight mismatch on {name}"
        );
    }

    // The Stock side carries the joined columns at the same iterated row
    // count; its weights agree with the hand model's stock read sub-query
    // on every shared attribute.
    let stock = query_by_name(ins, "NewOrder/0.1:select_stock");
    let hand_stock = query_by_name(&hand, "no/stock_update/read");
    assert_eq!(
        qualified_access_set(ins, stock),
        [
            "STOCK.S_I_ID",
            "STOCK.S_QUANTITY",
            "STOCK.S_DIST_01",
            "STOCK.S_DATA"
        ]
        .map(str::to_string)
        .into_iter()
        .collect::<BTreeSet<_>>()
    );
    for &a in &ins.workload().query(stock).attrs {
        let name = ins.schema().qualified_name(a).to_ascii_uppercase();
        let ha = hand
            .schema()
            .attr_by_name("Stock", name.split_once('.').unwrap().1)
            .unwrap_or_else(|| panic!("hand model lacks {name}"));
        assert_eq!(
            hand.weight(ha, hand_stock),
            ins.weight(a, stock),
            "weight mismatch on {name}"
        );
    }
}

#[test]
fn derived_constants_agree_on_the_slice() {
    let hand = vpart_instances::tpcc();
    let ins = ingest(SCHEMA, LOG, &IngestOptions::default())
        .unwrap()
        .instance;

    // φ: the ingested Payment reads exactly the attributes the hand-built
    // Payment reads from Warehouse/District.
    let hand_payment = hand.workload().txn_by_name("Payment").unwrap();
    let hand_read: BTreeSet<String> = hand
        .read_set(hand_payment)
        .iter()
        .map(|&a| hand.schema().qualified_name(a).to_ascii_uppercase())
        .filter(|n| n.starts_with("WAREHOUSE.") || n.starts_with("DISTRICT."))
        .collect();
    let ing_payment = ins.workload().txn_by_name("Payment").unwrap();
    let ing_read: BTreeSet<String> = ins
        .read_set(ing_payment)
        .iter()
        .map(|&a| ins.schema().qualified_name(a).to_ascii_uppercase())
        .collect();
    assert_eq!(hand_read, ing_read, "φ (read-set) mismatch");
}
