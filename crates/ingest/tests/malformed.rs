//! Malformed input produces typed `IngestError`s — never panics.

use vpart_ingest::{ingest, ingest_stats, IngestError, IngestOptions, SkipReason, StatsFormat};

const SCHEMA: &str = "CREATE TABLE t (a INT, b VARCHAR(8));";

fn err(schema: &str, log: &str) -> IngestError {
    ingest(schema, log, &IngestOptions::default()).unwrap_err()
}

fn stats_err(format: StatsFormat, dump: &str) -> IngestError {
    ingest_stats(SCHEMA, dump, format, &IngestOptions::default()).unwrap_err()
}

#[test]
fn unterminated_statement() {
    assert_eq!(
        err(SCHEMA, "SELECT a FROM t"),
        IngestError::UnterminatedStatement { line: 1 }
    );
    assert_eq!(
        err("CREATE TABLE t (a INT)", "SELECT a FROM t;"),
        IngestError::UnterminatedStatement { line: 1 }
    );
}

#[test]
fn unterminated_string_and_comment() {
    assert_eq!(
        err(SCHEMA, "SELECT a FROM t WHERE b = 'oops;"),
        IngestError::UnterminatedString { line: 1 }
    );
    assert_eq!(
        err(SCHEMA, "SELECT a FROM t; /* no end"),
        IngestError::UnterminatedComment { line: 1 }
    );
}

#[test]
fn unknown_column_and_table() {
    assert_eq!(
        err(SCHEMA, "SELECT nope FROM t;"),
        IngestError::UnknownColumn {
            table: "t".into(),
            column: "nope".into(),
            line: 1
        }
    );
    assert_eq!(
        err(SCHEMA, "SELECT a FROM missing;"),
        IngestError::UnknownTable {
            name: "missing".into(),
            line: 1
        }
    );
    assert_eq!(
        err(SCHEMA, "UPDATE t SET nope = 1 WHERE a = 2;"),
        IngestError::UnknownColumn {
            table: "t".into(),
            column: "nope".into(),
            line: 1
        }
    );
}

#[test]
fn empty_inputs() {
    assert_eq!(err(SCHEMA, ""), IngestError::EmptyLog);
    assert_eq!(err(SCHEMA, "-- only comments\n;;"), IngestError::EmptyLog);
    assert_eq!(err("", "SELECT a FROM t;"), IngestError::EmptySchema);
    assert_eq!(
        err("CREATE INDEX i ON t(a);", "SELECT a FROM t;"),
        IngestError::EmptySchema
    );
    assert_eq!(
        err(SCHEMA, "VACUUM;\nANALYZE;"),
        IngestError::NothingIngested { statements: 2 }
    );
}

#[test]
fn broken_transaction_brackets() {
    assert_eq!(
        err(SCHEMA, "BEGIN;\nSELECT a FROM t;"),
        IngestError::UnterminatedTransaction { line: 1 }
    );
    assert_eq!(
        err(SCHEMA, "SELECT a FROM t;\nCOMMIT;"),
        IngestError::CommitOutsideTransaction { line: 2 }
    );
    // A stray ROLLBACK names the actual statement, not COMMIT.
    let e = err(SCHEMA, "SELECT a FROM t;\nROLLBACK;");
    assert_eq!(e, IngestError::RollbackOutsideTransaction { line: 2 });
    assert!(e.to_string().contains("ROLLBACK"), "diagnostic: {e}");
    assert!(!e.to_string().contains("COMMIT"), "diagnostic: {e}");
    assert_eq!(
        err(SCHEMA, "BEGIN;\nBEGIN;"),
        IngestError::NestedTransaction { line: 2 }
    );
}

#[test]
fn conflicting_bracket_annotations() {
    let e = err(
        SCHEMA,
        "BEGIN; -- freq=2\nSELECT a FROM t;\nCOMMIT; -- freq=3",
    );
    assert!(
        matches!(&e, IngestError::ConflictingAnnotation { key, .. } if key == "freq"),
        "got {e:?}"
    );
    assert!(e.to_string().contains("freq"), "diagnostic: {e}");
}

#[test]
fn ambiguous_join_columns() {
    let schema = "CREATE TABLE t (a INT, b VARCHAR(8)); CREATE TABLE u (a INT, c INT);";
    let e = err(schema, "SELECT a FROM t JOIN u ON b = c;");
    assert!(
        matches!(&e, IngestError::AmbiguousColumn { column, .. } if column == "a"),
        "got {e:?}"
    );
    // Lenient mode skips the statement instead.
    let out = vpart_ingest::ingest(
        schema,
        "SELECT a FROM t JOIN u ON b = c;\nSELECT b FROM t;",
        &IngestOptions::default().lenient(),
    )
    .unwrap();
    assert_eq!(out.report.skipped.len(), 1);
    assert_eq!(
        out.report.skipped[0].reason,
        vpart_ingest::SkipReason::UnknownReference
    );
}

#[test]
fn malformed_ddl() {
    assert!(matches!(
        err("CREATE TABLE (a INT);", "SELECT a FROM t;"),
        IngestError::Syntax { .. }
    ));
    assert!(matches!(
        err("CREATE TABLE t a INT;", "SELECT a FROM t;"),
        IngestError::Syntax { .. }
    ));
    assert!(matches!(
        err(
            "CREATE TABLE t (a INT); CREATE TABLE t (b INT);",
            "SELECT a FROM t;"
        ),
        IngestError::DuplicateTable { .. }
    ));
    // A column with no type.
    assert!(matches!(
        err("CREATE TABLE t (a);", "SELECT a FROM t;"),
        IngestError::Syntax { .. }
    ));
}

#[test]
fn malformed_dml_grammar() {
    assert!(matches!(
        err(SCHEMA, "SELECT a b c;"),
        IngestError::Syntax { .. } // no FROM
    ));
    assert!(matches!(
        err(SCHEMA, "INSERT t VALUES (1);"),
        IngestError::Syntax { .. } // no INTO
    ));
    assert!(matches!(
        err(SCHEMA, "INSERT INTO t (a, b);"),
        IngestError::Syntax { .. } // no VALUES
    ));
    assert!(matches!(
        err(SCHEMA, "UPDATE t WHERE a = 1;"),
        IngestError::Syntax { .. } // no SET
    ));
    assert!(matches!(
        err(SCHEMA, "DELETE t WHERE a = 1;"),
        IngestError::Syntax { .. } // no FROM
    ));
    assert!(matches!(
        err(SCHEMA, "SELECT /*+ rows=-3 */ a FROM t;"),
        IngestError::Syntax { .. } // invalid annotation value
    ));
}

#[test]
fn lenient_mode_skips_instead_of_failing() {
    let log = "SELECT nope FROM t;\nSELECT a FROM t;";
    let out = ingest(SCHEMA, log, &IngestOptions::default().lenient()).unwrap();
    assert_eq!(out.instance.n_txns(), 1);
    assert_eq!(out.report.skipped.len(), 1);
    assert_eq!(
        out.report.skipped[0].reason,
        vpart_ingest::SkipReason::UnknownReference
    );
}

#[test]
fn errors_display_and_propagate_as_std_error() {
    let e = err(SCHEMA, "SELECT nope FROM t;");
    let boxed: Box<dyn std::error::Error> = Box::new(e);
    assert!(boxed.to_string().contains("nope"));
}

// ----------------------------------------------------- statistics dumps

#[test]
fn stats_header_without_required_columns() {
    // Wrong-format headers name the missing column.
    assert_eq!(
        stats_err(StatsFormat::PgssCsv, "a,b,c\nSELECT a FROM t,1,2\n"),
        IngestError::MissingStatsColumn {
            column: "query".into(),
            line: 1
        }
    );
    assert_eq!(
        stats_err(StatsFormat::PerfSchema, "query,calls\nSELECT a FROM t,1\n"),
        IngestError::MissingStatsColumn {
            column: "DIGEST_TEXT".into(),
            line: 1
        }
    );
}

#[test]
fn stats_truncated_rows() {
    assert_eq!(
        stats_err(
            StatsFormat::PgssCsv,
            "query,calls,rows\nSELECT a FROM t,5\n"
        ),
        IngestError::TruncatedStatsRow {
            line: 2,
            expected: 3,
            found: 2
        }
    );
    // Lenient mode skips the row and keeps going.
    let out = ingest_stats(
        SCHEMA,
        "query,calls,rows\nSELECT a FROM t,5\nSELECT b FROM t,3,3\n",
        StatsFormat::PgssCsv,
        &IngestOptions::default().lenient(),
    )
    .unwrap();
    assert_eq!(out.report.skipped.len(), 1);
    assert_eq!(out.report.skipped[0].reason, SkipReason::MalformedStatsRow);
    assert_eq!(out.instance.n_txns(), 1);
}

#[test]
fn stats_non_numeric_counters() {
    assert_eq!(
        stats_err(StatsFormat::PgssCsv, "query,calls\nSELECT a FROM t,often\n"),
        IngestError::StatsNumber {
            line: 2,
            column: "calls".into(),
            value: "often".into()
        }
    );
    assert_eq!(
        stats_err(
            StatsFormat::PerfSchema,
            "DIGEST_TEXT,COUNT_STAR,SUM_ROWS_EXAMINED\nSELECT a FROM t,3,lots\n"
        ),
        IngestError::StatsNumber {
            line: 2,
            column: "SUM_ROWS_EXAMINED".into(),
            value: "lots".into()
        }
    );
}

#[test]
fn stats_unparsable_digest_text() {
    // A digest truncated mid-token by the server fails statement parsing
    // with the dump row's line number.
    let e = stats_err(
        StatsFormat::PerfSchema,
        "DIGEST_TEXT,COUNT_STAR\nSELECT `a` FROM,7\n",
    );
    assert!(
        matches!(e, IngestError::Syntax { line: 2, .. }),
        "got {e:?}"
    );
    // Lenient mode records an Unparsable skip instead.
    let out = ingest_stats(
        SCHEMA,
        "DIGEST_TEXT,COUNT_STAR\nSELECT `a` FROM,7\nSELECT `b` FROM `t`,2\n",
        StatsFormat::PerfSchema,
        &IngestOptions::default().lenient(),
    )
    .unwrap();
    assert_eq!(out.report.skipped.len(), 1);
    assert_eq!(out.report.skipped[0].reason, SkipReason::Unparsable);
}

#[test]
fn stats_unknown_references_follow_strictness() {
    let dump = "query,calls\nSELECT nope FROM t,5\n";
    assert_eq!(
        stats_err(StatsFormat::PgssCsv, dump),
        IngestError::UnknownColumn {
            table: "t".into(),
            column: "nope".into(),
            line: 2
        }
    );
    let out = ingest_stats(
        SCHEMA,
        "query,calls\nSELECT nope FROM t,5\nSELECT a FROM t,2\n",
        StatsFormat::PgssCsv,
        &IngestOptions::default().lenient(),
    )
    .unwrap();
    assert_eq!(out.report.skipped.len(), 1);
    assert_eq!(out.report.skipped[0].reason, SkipReason::UnknownReference);
}

#[test]
fn stats_empty_and_all_skipped_dumps() {
    assert_eq!(stats_err(StatsFormat::PgssCsv, ""), IngestError::EmptyStats);
    assert_eq!(
        stats_err(StatsFormat::PgssCsv, "query,calls\n"),
        IngestError::EmptyStats,
        "header without data rows"
    );
    assert_eq!(
        stats_err(StatsFormat::PgssCsv, "query,calls\nBEGIN,100\nVACUUM,3\n"),
        IngestError::NothingIngested { statements: 2 }
    );
    assert_eq!(
        stats_err(StatsFormat::PgssJson, "[]"),
        IngestError::EmptyStats
    );
}

#[test]
fn stats_bad_json_shapes() {
    for dump in ["{", "42", "\"x\"", "{\"query\": \"SELECT 1\"}"] {
        assert!(
            matches!(
                stats_err(StatsFormat::PgssJson, dump),
                IngestError::StatsJson { .. }
            ),
            "dump {dump:?}"
        );
    }
}
