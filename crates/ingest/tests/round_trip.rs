//! DDL + log → `Instance` → JSON → `Instance` round-trips.

use vpart_ingest::{ingest, IngestOptions};
use vpart_model::Instance;

const SCHEMA: &str = "\
    CREATE TABLE customer (
        c_id BIGINT PRIMARY KEY,
        c_name VARCHAR(24),
        c_balance DECIMAL(12,2),
        c_notes TEXT
    );
    CREATE TABLE payment (
        p_id BIGINT,
        p_c_id BIGINT,
        p_amount DECIMAL(10,2),
        p_when TIMESTAMP
    );";

const LOG: &str = "\
    SELECT c_name, c_balance FROM customer WHERE c_id = 1; -- freq=40
    BEGIN; -- txn=pay freq=9
    SELECT c_balance FROM customer WHERE c_id = 2;
    UPDATE customer SET c_balance = c_balance - 10 WHERE c_id = 2;
    INSERT INTO payment (p_id, p_c_id, p_amount, p_when) VALUES (?, ?, ?, ?);
    COMMIT;
    SELECT p_amount FROM payment WHERE p_c_id = 3; -- rows=10 freq=5
    ";

#[test]
fn instance_round_trips_through_json() {
    let out = ingest(SCHEMA, LOG, &IngestOptions::default().with_name("rt")).unwrap();
    let json = serde_json::to_string(&out.instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(out.instance, back);
    // Pretty form parses to the same instance too.
    let pretty = serde_json::to_string_pretty(&out.instance).unwrap();
    let back2: Instance = serde_json::from_str(&pretty).unwrap();
    assert_eq!(out.instance, back2);
}

#[test]
fn reingesting_the_same_input_is_deterministic() {
    let a = ingest(SCHEMA, LOG, &IngestOptions::default()).unwrap();
    let b = ingest(SCHEMA, LOG, &IngestOptions::default()).unwrap();
    assert_eq!(a.instance, b.instance);
    assert_eq!(a.report, b.report);
}

#[test]
fn statistics_survive_the_round_trip() {
    let out = ingest(SCHEMA, LOG, &IngestOptions::default()).unwrap();
    let json = serde_json::to_string(&out.instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();

    let w = back.workload();
    // The standalone select kept its freq=40 annotation.
    let hot = w
        .query_by_name("txn0/0:select_customer")
        .expect("standalone select becomes txn0");
    assert_eq!(w.query(hot).frequency, 40.0);
    // The pay block kept its weight and the update kept its split.
    let pay = w.txn_by_name("pay").expect("named transaction");
    assert_eq!(w.txn(pay).queries.len(), 4);
    let upd = w.query_by_name("pay/1:update_customer/write").unwrap();
    assert_eq!(w.query(upd).frequency, 9.0);
    // The annotated row count survived.
    let scan = w.query_by_name("txn2/0:select_payment").unwrap();
    assert_eq!(w.query(scan).rows_for_table(vpart_model::TableId(1)), 10.0);
}

#[test]
fn ingested_instances_solve_and_validate() {
    let out = ingest(SCHEMA, LOG, &IngestOptions::default()).unwrap();
    let cost = vpart_core::CostConfig::default();
    let report = vpart_core::sa::SaSolver::new(vpart_core::sa::SaConfig::fast_deterministic(3))
        .solve(&out.instance, 2, &cost)
        .unwrap();
    report.partitioning.validate(&out.instance, false).unwrap();

    // And the round-tripped instance accepts the same partitioning.
    let json = serde_json::to_string(&out.instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    report.partitioning.validate(&back, false).unwrap();
}
