//! Workload ingestion: SQL DDL + query logs → partitioning instances.
//!
//! The paper derives its cost model from a schema and a workload of
//! transactions; real deployments express those as a `CREATE TABLE` script
//! plus a query log. This crate converts that pair into a validated
//! [`vpart_model::Instance`] ready for any solver in `vpart_core`:
//!
//! ```
//! use vpart_ingest::{ingest, IngestOptions};
//!
//! let schema = "CREATE TABLE acct (id BIGINT PRIMARY KEY, owner VARCHAR(16), bal DECIMAL(12,2));";
//! let log = "\
//!     BEGIN; -- txn=withdraw
//!     SELECT bal FROM acct WHERE id = 1;
//!     UPDATE acct SET bal = bal - 100 WHERE id = 1;
//!     COMMIT;";
//! let out = ingest(schema, log, &IngestOptions::default()).unwrap();
//! assert_eq!(out.instance.n_txns(), 1);
//! assert_eq!(out.instance.n_queries(), 3); // select + update read/write
//! // `WHERE id = 1` binds the full primary key → rows = 1, no annotation
//! // needed, and the estimate is principled (lossless).
//! assert!(out.report.is_lossless());
//! assert!(out.report.row_estimates.iter().all(|e| e.pk_equality));
//! ```
//!
//! # Workload frontends
//!
//! The query log is one of several [`frontend::WorkloadFrontend`]s. The
//! same schema can instead be paired with pre-aggregated statistics —
//! a `pg_stat_statements` dump (CSV or JSON) or a MySQL
//! `performance_schema` digest summary — via [`ingest_stats`]: each dump
//! row is a normalized `(template, calls, rows)` record whose template
//! text goes through the same flattening and row-estimation pipeline as
//! log statements. Sampled inputs scale up to population estimates with
//! [`IngestOptions::sample_rate`], and rarely-seen templates are flagged
//! [`report::ConfidenceLevel::LowConfidence`] in the report:
//!
//! ```
//! use vpart_ingest::{ingest_stats, IngestOptions, StatsFormat};
//!
//! let schema = "CREATE TABLE acct (id BIGINT PRIMARY KEY, bal DECIMAL(12,2));";
//! let dump = "query,calls,rows\n\
//!             \"SELECT bal FROM acct WHERE id = $1\",1200,1200\n\
//!             \"UPDATE acct SET bal = bal - $1 WHERE id = $2\",400,400\n";
//! let out = ingest_stats(
//!     schema,
//!     dump,
//!     StatsFormat::PgssCsv,
//!     &IngestOptions::default().with_sample_rate(0.5),
//! )
//! .unwrap();
//! assert_eq!(out.instance.n_txns(), 2);
//! // calls scale by 1/sample_rate; both templates clear the confidence bar.
//! assert_eq!(out.instance.workload().query(vpart_model::QueryId(0)).frequency, 2400.0);
//! assert!(out.report.low_confidence().next().is_none());
//! ```
//!
//! # Supported SQL subset
//!
//! **DDL** — `CREATE TABLE name (col TYPE [constraints], ..., [table
//! constraints])`, with optional `IF NOT EXISTS` and quoted identifiers.
//! Types map to average widths `w_a` by their natural binary width:
//! integer/float widths as usual, `DECIMAL(p,s)` by precision (4 bytes up
//! to 9 digits, 8 up to 18, packed beyond), `CHAR(n)`/`VARCHAR(n)` as `n`,
//! date/time types 4–8 bytes, `UUID` 16. Unbounded or unknown types
//! (`TEXT`, `BLOB`, vendor types) use [`IngestOptions::text_width`] and
//! are reported as width fallbacks. `PRIMARY KEY` declarations are kept
//! for row estimation; other constraints (`FOREIGN KEY`, `UNIQUE`,
//! `CHECK`, ...) are accepted and ignored; non-`CREATE TABLE` DDL is
//! skipped with a diagnostic.
//!
//! **Query log** — `SELECT` / `INSERT` / `UPDATE` / `DELETE` (table
//! aliases, `AS` output aliases and schema-qualified names are accepted),
//! plus `BEGIN`/`COMMIT`/`ROLLBACK` brackets. Multi-table statements are
//! *flattened* into one access per touched table, exactly as the
//! hand-built TPC-C model expresses its multi-table transactions:
//!
//! * `JOIN ... ON` / `USING` and comma joins — one read per joined table
//!   over the columns each table contributes,
//! * `IN (SELECT ...)`, `EXISTS (...)` and other parenthesized subqueries
//!   (correlated ones included) — the inner tables become reads,
//! * `INSERT ... SELECT` — a write on the target plus reads on the
//!   sources.
//!
//! Selection predicates count as attribute accesses (as in the hand-built
//! TPC-C model); `SELECT *` and unpredicated `DELETE` touch every column;
//! UPDATEs split into read + write sub-queries per the paper's §5.2.
//! Identical statements/blocks aggregate into query frequencies.
//!
//! # Row counts
//!
//! Per-table row counts `n_{a,q}` come from, in priority order:
//!
//! 1. a `-- rows=N` annotation (authoritative),
//! 2. the `VALUES` tuple count of a plain `INSERT` (exact),
//! 3. a full `PRIMARY KEY` equality binding (`WHERE pk = ?`, every key
//!    column `=` a constant, no `OR`) → 1 row,
//! 4. otherwise [`IngestOptions::default_rows`] scaled by the `-- sel=F`
//!    annotation (join selectivity / fan-out), recorded in the report as
//!    a guess.
//!
//! Other annotations: `-- freq=N` (execution weight, on a bare statement
//! or either transaction bracket), `-- txn=Name` (template name);
//! `/*+ ... */` hint comments work inline.
//!
//! # Known limits (by design, see the ingest report for visibility)
//!
//! * no set operations (`UNION`, ...), no derived tables
//!   (`FROM (SELECT ...) alias`) and no multi-table `UPDATE` targets —
//!   skipped with [`report::SkipReason`] diagnostics,
//! * `COUNT(*)` and arithmetic `*` are read as whole-row references (an
//!   over-approximation),
//! * statement order inside a transaction is part of its aggregation
//!   identity: two blocks with the same statements in different order
//!   count as two templates.
//!
//! # Error policy
//!
//! Truncated input and schema/log mismatches (unknown tables/columns,
//! ambiguous join columns, unbalanced `BEGIN`/`COMMIT`, conflicting
//! bracket annotations) are typed [`IngestError`]s — silently dropping
//! workload would corrupt the cost model. Well-formed but unsupported SQL
//! is *skipped and reported* instead ([`IngestOptions::strict`] = `false`
//! extends this to unknown references). Nothing panics on malformed text.

pub mod ddl;
pub mod error;
pub mod frontend;
pub mod lexer;
pub mod report;
pub mod stmt;

pub use frontend::log;
pub use frontend::{
    FrontendCtx, MinerStats, RecordBatch, StatsFormat, StatsReader, StatsRecord, WorkloadFrontend,
};

pub use error::IngestError;
pub use report::{
    ConfidenceEntry, ConfidenceLevel, IngestReport, RowEstimate, SkipReason, Skipped, WidthFallback,
};

use vpart_model::Instance;

/// Ingestion knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOptions {
    /// Name of the produced instance.
    pub name: String,
    /// Fallback width in bytes for unbounded/unknown SQL types.
    pub text_width: f64,
    /// Fallback per-table row count for statements with neither a `rows=`
    /// annotation nor a full primary-key equality predicate.
    pub default_rows: f64,
    /// When `true` (default), unknown tables/columns and in-statement
    /// grammar violations abort ingestion; when `false` they skip the
    /// statement with a diagnostic.
    pub strict: bool,
    /// Fraction of the real traffic the input covers, in `(0, 1]`.
    /// Ingested frequencies are scaled by `1 / sample_rate` to population
    /// estimates; any value below 1 also turns on per-template confidence
    /// reporting ([`report::ConfidenceEntry`]).
    pub sample_rate: f64,
    /// When sampling, templates observed fewer than this many times are
    /// flagged [`report::ConfidenceLevel::LowConfidence`]: their scaled
    /// frequency rests on too few observations to trust.
    pub confidence_min_calls: f64,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            name: "ingested".to_string(),
            text_width: 64.0,
            default_rows: 1.0,
            strict: true,
            sample_rate: 1.0,
            confidence_min_calls: 10.0,
        }
    }
}

impl IngestOptions {
    /// Sets the instance name.
    pub fn with_name<S: Into<String>>(mut self, name: S) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the fallback width for unbounded types.
    pub fn with_text_width(mut self, width: f64) -> Self {
        self.text_width = width;
        self
    }

    /// Sets the fallback row count for unestimable statements.
    pub fn with_default_rows(mut self, rows: f64) -> Self {
        self.default_rows = rows;
        self
    }

    /// Switches to lenient handling of unknown references.
    pub fn lenient(mut self) -> Self {
        self.strict = false;
        self
    }

    /// Sets the sampling rate the input was collected at (validated on
    /// ingestion: must be in `(0, 1]`).
    pub fn with_sample_rate(mut self, rate: f64) -> Self {
        self.sample_rate = rate;
        self
    }

    /// Sets the minimum observations below which a sampled template is
    /// flagged low-confidence.
    pub fn with_confidence_min_calls(mut self, calls: f64) -> Self {
        self.confidence_min_calls = calls;
        self
    }
}

/// A successful ingestion: the instance plus its loss diagnostics.
#[derive(Debug, Clone)]
pub struct Ingestion {
    /// The validated instance.
    pub instance: Instance,
    /// What was read, guessed and skipped.
    pub report: IngestReport,
}

/// Converts DDL text plus a query log into a partitioning instance.
pub fn ingest(
    schema_sql: &str,
    query_log: &str,
    opts: &IngestOptions,
) -> Result<Ingestion, IngestError> {
    ingest_with(&frontend::log::LogFrontend, schema_sql, query_log, opts)
}

/// Converts DDL text plus a statistics dump (`pg_stat_statements` /
/// `performance_schema`) into a partitioning instance.
pub fn ingest_stats(
    schema_sql: &str,
    dump: &str,
    format: StatsFormat,
    opts: &IngestOptions,
) -> Result<Ingestion, IngestError> {
    ingest_with(format.frontend(), schema_sql, dump, opts)
}

/// Converts DDL text plus frontend-specific workload input into a
/// partitioning instance — the generic entry point behind [`ingest`] and
/// [`ingest_stats`], open to user-supplied [`WorkloadFrontend`]s.
pub fn ingest_with(
    frontend: &dyn WorkloadFrontend,
    schema_sql: &str,
    input: &str,
    opts: &IngestOptions,
) -> Result<Ingestion, IngestError> {
    if !(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0) {
        return Err(IngestError::InvalidSampleRate {
            rate: opts.sample_rate,
        });
    }
    let parsed = ddl::parse_schema(schema_sql, opts)?;
    let ctx = FrontendCtx {
        schema: &parsed.schema,
        primary_keys: &parsed.primary_keys,
        opts,
    };
    let (workload, stats) = frontend.mine(input, &ctx)?;
    let instance = Instance::new(opts.name.clone(), parsed.schema, workload)?;

    let mut skipped = parsed.skipped;
    skipped.extend(stats.skipped);
    skipped.sort_by_key(|s| s.line);
    let report = IngestReport {
        tables: instance.n_tables(),
        attrs: instance.n_attrs(),
        txns: instance.n_txns(),
        queries: instance.n_queries(),
        statements_seen: stats.statements_seen,
        statements_ingested: stats.statements_ingested,
        txn_occurrences: stats.txn_occurrences,
        skipped,
        width_fallbacks: parsed.width_fallbacks,
        row_estimates: stats.row_estimates,
        sample_rate: opts.sample_rate,
        confidence: stats.confidence,
    };
    Ok(Ingestion { instance, report })
}

/// Parses only the DDL side into a schema (plus diagnostics).
pub fn parse_schema(
    schema_sql: &str,
    opts: &IngestOptions,
) -> Result<ddl::ParsedSchema, IngestError> {
    ddl::parse_schema(schema_sql, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "\
        CREATE TABLE users (u_id BIGINT PRIMARY KEY, u_email VARCHAR(64), u_notes TEXT);\n\
        CREATE TABLE orders (o_id BIGINT PRIMARY KEY, o_u_id BIGINT, o_total DECIMAL(12,2));";

    #[test]
    fn end_to_end_builds_a_validated_instance() {
        let log = "\
            SELECT u_email FROM users WHERE u_id = 7;\n\
            BEGIN; -- txn=checkout\n\
            SELECT u_id FROM users WHERE u_email = 'a@b.c';\n\
            INSERT INTO orders VALUES (1, 7, 9.99);\n\
            COMMIT;\n\
            SELECT u_email, o_total FROM orders JOIN users ON o_u_id = u_id WHERE o_id = 3;";
        let out = ingest(SCHEMA, log, &IngestOptions::default()).unwrap();
        assert_eq!(out.instance.n_tables(), 2);
        assert_eq!(out.instance.n_attrs(), 6);
        assert_eq!(out.instance.n_txns(), 3);
        assert_eq!(out.report.statements_seen, 4);
        assert_eq!(out.report.statements_ingested, 4, "the join ingests too");
        // 1 select + (select + insert) + 2 flattened join reads.
        assert_eq!(out.instance.n_queries(), 5);
        assert!(out.report.skipped.is_empty());
        assert_eq!(out.report.width_fallbacks.len(), 1, "TEXT column");
        // u_id = 7 and o_id = 3 are PK equalities; the email lookup and
        // the join's users side are default guesses.
        assert!(out
            .report
            .row_estimates
            .iter()
            .any(|e| e.pk_equality && e.table == "users"));
        assert!(!out.report.is_lossless(), "default guesses remain visible");
        assert!(out.instance.workload().txn_by_name("checkout").is_some());
    }

    #[test]
    fn report_numbers_match_the_instance() {
        let out = ingest(
            SCHEMA,
            "SELECT u_email FROM users WHERE u_id = 1;",
            &IngestOptions::default().with_name("tiny"),
        )
        .unwrap();
        assert_eq!(out.instance.name(), "tiny");
        assert_eq!(out.report.tables, out.instance.n_tables());
        assert_eq!(out.report.attrs, out.instance.n_attrs());
        assert_eq!(out.report.txns, out.instance.n_txns());
        assert_eq!(out.report.queries, out.instance.n_queries());
    }

    #[test]
    fn default_rows_option_feeds_the_fallback_estimate() {
        let out = ingest(
            SCHEMA,
            "SELECT u_id FROM users WHERE u_email = 'a@b.c';",
            &IngestOptions::default().with_default_rows(12.0),
        )
        .unwrap();
        let w = out.instance.workload();
        let q = w.query(vpart_model::QueryId(0));
        assert_eq!(q.rows_for_table(vpart_model::TableId(0)), 12.0);
        assert_eq!(out.report.row_estimates.len(), 1);
        assert!(!out.report.row_estimates[0].pk_equality);
        assert_eq!(out.report.row_estimates[0].rows, 12.0);
    }

    #[test]
    fn stats_and_log_frontends_share_the_statement_pipeline() {
        // The same workload expressed as a log and as a pgss dump (with
        // matching counts) produces structurally identical instances.
        let log = "SELECT /*+ freq=6 */ u_email FROM users WHERE u_id = 7;\n\
                   UPDATE /*+ freq=2 */ orders SET o_total = 0 WHERE o_id = 1;";
        let dump = "query,calls,rows\n\
                    \"SELECT u_email FROM users WHERE u_id = $1\",6,6\n\
                    \"UPDATE orders SET o_total = $1 WHERE o_id = $2\",2,2\n";
        let opts = IngestOptions::default().with_name("same");
        let from_log = ingest(SCHEMA, log, &opts).unwrap();
        let from_stats = ingest_stats(SCHEMA, dump, StatsFormat::PgssCsv, &opts).unwrap();
        assert_eq!(from_log.instance, from_stats.instance);
    }

    #[test]
    fn invalid_sample_rates_are_rejected() {
        for rate in [0.0, -1.0, 1.5, f64::NAN] {
            let err = ingest(
                SCHEMA,
                "SELECT u_email FROM users WHERE u_id = 1;",
                &IngestOptions::default().with_sample_rate(rate),
            )
            .unwrap_err();
            assert!(
                matches!(err, IngestError::InvalidSampleRate { .. }),
                "rate {rate}: {err:?}"
            );
        }
    }

    #[test]
    fn strict_mode_propagates_reference_errors() {
        let log = "SELECT nope FROM users;";
        assert!(matches!(
            ingest(SCHEMA, log, &IngestOptions::default()),
            Err(IngestError::UnknownColumn { .. })
        ));
        let out = ingest(SCHEMA, log, &IngestOptions::default().lenient());
        assert!(matches!(out, Err(IngestError::NothingIngested { .. })));
    }
}
