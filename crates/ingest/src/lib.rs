//! Workload ingestion: SQL DDL + query logs → partitioning instances.
//!
//! The paper derives its cost model from a schema and a workload of
//! transactions; real deployments express those as a `CREATE TABLE` script
//! plus a query log. This crate converts that pair into a validated
//! [`vpart_model::Instance`] ready for any solver in `vpart_core`:
//!
//! ```
//! use vpart_ingest::{ingest, IngestOptions};
//!
//! let schema = "CREATE TABLE acct (id BIGINT, owner VARCHAR(16), bal DECIMAL(12,2));";
//! let log = "\
//!     BEGIN; -- txn=withdraw
//!     SELECT bal FROM acct WHERE id = 1;
//!     UPDATE acct SET bal = bal - 100 WHERE id = 1;
//!     COMMIT;";
//! let out = ingest(schema, log, &IngestOptions::default()).unwrap();
//! assert_eq!(out.instance.n_txns(), 1);
//! assert_eq!(out.instance.n_queries(), 3); // select + update read/write
//! assert!(out.report.is_lossless());
//! ```
//!
//! # Supported SQL subset
//!
//! **DDL** — `CREATE TABLE name (col TYPE [constraints], ..., [table
//! constraints])`, with optional `IF NOT EXISTS` and quoted identifiers.
//! Types map to average widths `w_a` by their natural binary width:
//! integer/float widths as usual, `DECIMAL(p,s)` by precision (4 bytes up
//! to 9 digits, 8 up to 18, packed beyond), `CHAR(n)`/`VARCHAR(n)` as `n`,
//! date/time types 4–8 bytes, `UUID` 16. Unbounded or unknown types
//! (`TEXT`, `BLOB`, vendor types) use [`IngestOptions::text_width`] and
//! are reported as width fallbacks. Table constraints (`PRIMARY KEY`,
//! `FOREIGN KEY`, `UNIQUE`, `CHECK`, ...) and column constraints are
//! accepted and ignored; other DDL statements are skipped with a
//! diagnostic.
//!
//! **Query log** — `SELECT` / `INSERT` / `UPDATE` / `DELETE` over a
//! *single table each* (table aliases, `AS` output aliases and
//! schema-qualified names are accepted), plus
//! `BEGIN`/`COMMIT`/`ROLLBACK` brackets.
//! Selection predicates count as attribute accesses (as in the hand-built
//! TPC-C model); `SELECT *` and unpredicated `DELETE` touch every column;
//! UPDATEs split into read + write sub-queries per the paper's §5.2.
//! Identical statements/blocks aggregate into query frequencies.
//! Comment annotations refine statistics: `-- rows=N` (average rows per
//! execution), `-- freq=N` (execution weight), `-- txn=Name` (template
//! name); `/*+ ... */` hint comments work inline.
//!
//! # Known limits (by design, see the ingest report for visibility)
//!
//! * no JOINs / multi-table `FROM` — such statements are skipped with a
//!   [`report::SkipReason::Join`] diagnostic,
//! * no subqueries or `INSERT ... SELECT`,
//! * `COUNT(*)` and arithmetic `*` are read as whole-row references (an
//!   over-approximation),
//! * statement order inside a transaction is part of its aggregation
//!   identity: two blocks with the same statements in different order
//!   count as two templates.
//!
//! # Error policy
//!
//! Truncated input and schema/log mismatches (unknown tables/columns,
//! unbalanced `BEGIN`/`COMMIT`) are typed [`IngestError`]s — silently
//! dropping workload would corrupt the cost model. Well-formed but
//! unsupported SQL is *skipped and reported* instead
//! ([`IngestOptions::strict`] = `false` extends this to unknown
//! references). Nothing panics on malformed text.

pub mod ddl;
pub mod error;
pub mod lexer;
pub mod log;
pub mod report;
pub mod stmt;

pub use error::IngestError;
pub use report::{IngestReport, SkipReason, Skipped, WidthFallback};

use vpart_model::Instance;

/// Ingestion knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOptions {
    /// Name of the produced instance.
    pub name: String,
    /// Fallback width in bytes for unbounded/unknown SQL types.
    pub text_width: f64,
    /// When `true` (default), unknown tables/columns and in-statement
    /// grammar violations abort ingestion; when `false` they skip the
    /// statement with a diagnostic.
    pub strict: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            name: "ingested".to_string(),
            text_width: 64.0,
            strict: true,
        }
    }
}

impl IngestOptions {
    /// Sets the instance name.
    pub fn with_name<S: Into<String>>(mut self, name: S) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the fallback width for unbounded types.
    pub fn with_text_width(mut self, width: f64) -> Self {
        self.text_width = width;
        self
    }

    /// Switches to lenient handling of unknown references.
    pub fn lenient(mut self) -> Self {
        self.strict = false;
        self
    }
}

/// A successful ingestion: the instance plus its loss diagnostics.
#[derive(Debug, Clone)]
pub struct Ingestion {
    /// The validated instance.
    pub instance: Instance,
    /// What was read, guessed and skipped.
    pub report: IngestReport,
}

/// Converts DDL text plus a query log into a partitioning instance.
pub fn ingest(
    schema_sql: &str,
    query_log: &str,
    opts: &IngestOptions,
) -> Result<Ingestion, IngestError> {
    let parsed = ddl::parse_schema(schema_sql, opts)?;
    let (workload, stats) = log::mine_workload(query_log, &parsed.schema, opts)?;
    let instance = Instance::new(opts.name.clone(), parsed.schema, workload)?;

    let mut skipped = parsed.skipped;
    skipped.extend(stats.skipped);
    skipped.sort_by_key(|s| s.line);
    let report = IngestReport {
        tables: instance.n_tables(),
        attrs: instance.n_attrs(),
        txns: instance.n_txns(),
        queries: instance.n_queries(),
        statements_seen: stats.statements_seen,
        statements_ingested: stats.statements_ingested,
        txn_occurrences: stats.txn_occurrences,
        skipped,
        width_fallbacks: parsed.width_fallbacks,
    };
    Ok(Ingestion { instance, report })
}

/// Parses only the DDL side into a schema (plus diagnostics).
pub fn parse_schema(
    schema_sql: &str,
    opts: &IngestOptions,
) -> Result<ddl::ParsedSchema, IngestError> {
    ddl::parse_schema(schema_sql, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "\
        CREATE TABLE users (u_id BIGINT, u_email VARCHAR(64), u_notes TEXT);\n\
        CREATE TABLE orders (o_id BIGINT, o_u_id BIGINT, o_total DECIMAL(12,2));";

    #[test]
    fn end_to_end_builds_a_validated_instance() {
        let log = "\
            SELECT u_email FROM users WHERE u_id = 7;\n\
            BEGIN; -- txn=checkout\n\
            SELECT u_id FROM users WHERE u_email = 'a@b.c';\n\
            INSERT INTO orders VALUES (1, 7, 9.99);\n\
            COMMIT;\n\
            SELECT * FROM orders, users;";
        let out = ingest(SCHEMA, log, &IngestOptions::default()).unwrap();
        assert_eq!(out.instance.n_tables(), 2);
        assert_eq!(out.instance.n_attrs(), 6);
        assert_eq!(out.instance.n_txns(), 2);
        assert_eq!(out.report.statements_seen, 4);
        assert_eq!(out.report.statements_ingested, 3);
        assert_eq!(out.report.skipped.len(), 1);
        assert_eq!(out.report.skipped[0].reason, SkipReason::Join);
        assert_eq!(out.report.width_fallbacks.len(), 1, "TEXT column");
        assert!(!out.report.is_lossless());
        assert!(out.instance.workload().txn_by_name("checkout").is_some());
    }

    #[test]
    fn report_numbers_match_the_instance() {
        let out = ingest(
            SCHEMA,
            "SELECT u_email FROM users WHERE u_id = 1;",
            &IngestOptions::default().with_name("tiny"),
        )
        .unwrap();
        assert_eq!(out.instance.name(), "tiny");
        assert_eq!(out.report.tables, out.instance.n_tables());
        assert_eq!(out.report.attrs, out.instance.n_attrs());
        assert_eq!(out.report.txns, out.instance.n_txns());
        assert_eq!(out.report.queries, out.instance.n_queries());
    }

    #[test]
    fn strict_mode_propagates_reference_errors() {
        let log = "SELECT nope FROM users;";
        assert!(matches!(
            ingest(SCHEMA, log, &IngestOptions::default()),
            Err(IngestError::UnknownColumn { .. })
        ));
        let out = ingest(SCHEMA, log, &IngestOptions::default().lenient());
        assert!(matches!(out, Err(IngestError::NothingIngested { .. })));
    }
}
