//! Typed ingestion errors.
//!
//! Ingestion distinguishes *malformed input* (these errors — lexical
//! problems, schema/log mismatches, broken transaction brackets) from
//! *unsupported-but-well-formed* SQL, which is skipped and surfaced through
//! [`crate::report::IngestReport`] diagnostics instead. The dividing line:
//! anything that suggests the schema and log do not belong together, or
//! that the input is truncated/corrupt, must fail loudly; anything this
//! parser simply does not model (joins, subqueries, DDL in the log) is
//! lossy-but-visible.

use std::fmt;
use vpart_model::ModelError;

/// Errors raised while ingesting SQL schema and query-log text.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A string literal was not closed before end of input.
    UnterminatedString {
        /// Line the literal started on.
        line: u32,
    },
    /// A `/* ... */` comment was not closed before end of input.
    UnterminatedComment {
        /// Line the comment started on.
        line: u32,
    },
    /// Input ended inside a statement (missing the terminating `;`).
    UnterminatedStatement {
        /// Line the statement started on.
        line: u32,
    },
    /// A statement violated the supported grammar.
    Syntax {
        /// Line of the offending token.
        line: u32,
        /// What the parser was looking for.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// A statement referenced a table the schema does not define.
    UnknownTable {
        /// The referenced table name.
        name: String,
        /// Line of the reference.
        line: u32,
    },
    /// A statement referenced a column its target table does not have.
    UnknownColumn {
        /// The statement's target table (or the in-scope tables, comma-
        /// separated, for multi-table statements).
        table: String,
        /// The referenced column name.
        column: String,
        /// Line of the reference.
        line: u32,
    },
    /// An unqualified column name that several in-scope tables of a
    /// multi-table statement could bind.
    AmbiguousColumn {
        /// The referenced column name.
        column: String,
        /// Tables that all define the column.
        tables: Vec<String>,
        /// Line of the reference.
        line: u32,
    },
    /// A statement combines multiple `SELECT`s in a way that cannot be
    /// flattened into per-table accesses (`UNION`, ...). Internal: the
    /// parser converts this into a [`crate::SkipReason::Subquery`] skip
    /// before it can escape [`crate::stmt::parse_statement`].
    Unflattenable {
        /// Line of the statement.
        line: u32,
    },
    /// The schema file defines the same table twice.
    DuplicateTable {
        /// The duplicated name.
        name: String,
        /// Line of the second definition.
        line: u32,
    },
    /// The schema file contains no ingestible `CREATE TABLE` statement.
    EmptySchema,
    /// The query log contains no statements at all.
    EmptyLog,
    /// The query log contains statements, but every one was skipped as
    /// unsupported — there is no workload to build.
    NothingIngested {
        /// How many statements were seen (and skipped).
        statements: usize,
    },
    /// A `BEGIN` block was never closed by `COMMIT`.
    UnterminatedTransaction {
        /// Line of the unmatched `BEGIN`.
        line: u32,
    },
    /// `BEGIN` inside an open transaction block.
    NestedTransaction {
        /// Line of the inner `BEGIN`.
        line: u32,
    },
    /// `COMMIT` without a matching `BEGIN`.
    CommitOutsideTransaction {
        /// Line of the stray bracket.
        line: u32,
    },
    /// `ROLLBACK` without a matching `BEGIN`.
    RollbackOutsideTransaction {
        /// Line of the stray bracket.
        line: u32,
    },
    /// The same annotation appears with different values on both ends of a
    /// transaction block (`BEGIN; -- freq=2 ... COMMIT; -- freq=3`).
    ConflictingAnnotation {
        /// The annotation key (`freq`, `txn`).
        key: String,
        /// The value on `BEGIN`.
        first: String,
        /// The value on `COMMIT`.
        second: String,
        /// Line of the `COMMIT`.
        line: u32,
    },
    /// A statistics dump's header lacks a column the format requires
    /// (`query`/`calls` for pg_stat_statements, `DIGEST_TEXT`/`COUNT_STAR`
    /// for performance_schema) — usually the wrong `--stats-format`.
    MissingStatsColumn {
        /// The missing column name.
        column: String,
        /// Line of the header row.
        line: u32,
    },
    /// A statistics row has fewer fields than the header declared.
    TruncatedStatsRow {
        /// Line the row starts on.
        line: u32,
        /// Fields the header declared.
        expected: usize,
        /// Fields the row actually has.
        found: usize,
    },
    /// A numeric statistics field (`calls`, `rows`, `COUNT_STAR`, ...) did
    /// not parse as a finite non-negative number.
    StatsNumber {
        /// Line of the row.
        line: u32,
        /// The offending column.
        column: String,
        /// The raw field text.
        value: String,
    },
    /// The statistics dump contains no data rows at all.
    EmptyStats,
    /// A JSON statistics dump is not valid JSON or not an array of objects.
    StatsJson {
        /// What was wrong.
        detail: String,
    },
    /// [`crate::IngestOptions::sample_rate`] outside `(0, 1]`.
    InvalidSampleRate {
        /// The rejected rate.
        rate: f64,
    },
    /// The assembled schema/workload failed model validation.
    Model(ModelError),
}

impl From<ModelError> for IngestError {
    fn from(e: ModelError) -> Self {
        IngestError::Model(e)
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnterminatedString { line } => {
                write!(f, "line {line}: unterminated string literal")
            }
            Self::UnterminatedComment { line } => {
                write!(f, "line {line}: unterminated block comment")
            }
            Self::UnterminatedStatement { line } => {
                write!(f, "line {line}: statement not terminated by `;`")
            }
            Self::Syntax {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected}, found {found}"),
            Self::UnknownTable { name, line } => {
                write!(f, "line {line}: unknown table {name:?}")
            }
            Self::UnknownColumn {
                table,
                column,
                line,
            } => write!(f, "line {line}: table {table:?} has no column {column:?}"),
            Self::AmbiguousColumn {
                column,
                tables,
                line,
            } => write!(
                f,
                "line {line}: column {column:?} is ambiguous (defined in {})",
                tables.join(", ")
            ),
            Self::Unflattenable { line } => {
                write!(f, "line {line}: statement cannot be flattened per table")
            }
            Self::DuplicateTable { name, line } => {
                write!(f, "line {line}: table {name:?} defined twice")
            }
            Self::EmptySchema => write!(f, "schema defines no tables"),
            Self::EmptyLog => write!(f, "query log contains no statements"),
            Self::NothingIngested { statements } => write!(
                f,
                "all {statements} statements were skipped; no workload to build \
                 (see the ingest report for reasons)"
            ),
            Self::UnterminatedTransaction { line } => {
                write!(f, "line {line}: BEGIN without matching COMMIT")
            }
            Self::NestedTransaction { line } => {
                write!(f, "line {line}: BEGIN inside an open transaction")
            }
            Self::CommitOutsideTransaction { line } => {
                write!(f, "line {line}: COMMIT without an open transaction")
            }
            Self::RollbackOutsideTransaction { line } => {
                write!(f, "line {line}: ROLLBACK without an open transaction")
            }
            Self::ConflictingAnnotation {
                key,
                first,
                second,
                line,
            } => write!(
                f,
                "line {line}: conflicting {key}= annotations on BEGIN ({first}) \
                 and COMMIT ({second})"
            ),
            Self::MissingStatsColumn { column, line } => write!(
                f,
                "line {line}: statistics header has no {column:?} column \
                 (wrong --stats-format?)"
            ),
            Self::TruncatedStatsRow {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: statistics row has {found} fields, header declared {expected}"
            ),
            Self::StatsNumber {
                line,
                column,
                value,
            } => write!(
                f,
                "line {line}: {column} must be a finite non-negative number, got {value:?}"
            ),
            Self::EmptyStats => write!(f, "statistics dump contains no data rows"),
            Self::StatsJson { detail } => {
                write!(f, "statistics dump is not usable JSON: {detail}")
            }
            Self::InvalidSampleRate { rate } => {
                write!(f, "sample rate must be in (0, 1], got {rate}")
            }
            Self::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_location() {
        let e = IngestError::UnknownColumn {
            table: "warehouse".into(),
            column: "w_nope".into(),
            line: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("line 7") && msg.contains("w_nope") && msg.contains("warehouse"));
    }

    #[test]
    fn model_errors_wrap_with_source() {
        let e = IngestError::from(ModelError::EmptyWorkload);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("model validation"));
    }
}
