//! Ingestion diagnostics: what was read, what was guessed, what was lost.
//!
//! Ingestion is deliberately lossy for SQL this parser does not model
//! (joins, subqueries, vendor DDL, ...). The [`IngestReport`] makes every
//! loss visible — skipped statements with reasons and source snippets,
//! width guesses for unbounded types — so a user can judge whether the
//! resulting instance still represents their workload.

use std::fmt;

/// Why a statement was skipped instead of ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// A multi-table write target (`UPDATE a, b SET ...`); plain joined
    /// `SELECT`s flatten into per-table accesses instead.
    Join,
    /// A `SELECT` shape that cannot be flattened per table (`UNION`,
    /// derived tables in `FROM`, ...); parenthesized predicate and
    /// select-list subqueries flatten instead.
    Subquery,
    /// Statement kind outside the supported DML subset (DDL, `SET`,
    /// `EXPLAIN`, vendor commands, ...).
    NotADmlStatement,
    /// The statement parsed to an empty attribute set (nothing to cost).
    NoColumns,
    /// A `BEGIN ... ROLLBACK` block: its work was undone, so it
    /// contributes no workload.
    RolledBack,
    /// Statement referenced an unknown table or column (lenient mode only;
    /// strict mode raises [`crate::IngestError`] instead).
    UnknownReference,
    /// The statement's grammar could not be parsed (lenient mode only).
    Unparsable,
    /// A transaction-control statement (`BEGIN`, `COMMIT`, `ROLLBACK`)
    /// inside a statistics dump: dumps aggregate per statement, so the
    /// bracket carries no workload of its own.
    TxnControl,
    /// A malformed statistics row (truncated, non-numeric counters; lenient
    /// mode only — strict mode raises [`crate::IngestError`] instead).
    MalformedStatsRow,
    /// A statistics row with zero observed executions contributes no
    /// workload (e.g. a statement reset since it last ran).
    ZeroCalls,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Join => "multi-table write targets are not supported",
            Self::Subquery => "cannot be flattened per table (UNION, derived table, ...)",
            Self::NotADmlStatement => "not a supported DML statement",
            Self::NoColumns => "no referenced columns",
            Self::RolledBack => "transaction rolled back",
            Self::UnknownReference => "unknown table or column",
            Self::Unparsable => "could not parse",
            Self::TxnControl => "transaction control carries no workload in a statistics dump",
            Self::MalformedStatsRow => "malformed statistics row",
            Self::ZeroCalls => "zero observed executions",
        };
        f.write_str(s)
    }
}

/// One skipped statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Skipped {
    /// 1-based source line.
    pub line: u32,
    /// Why it was skipped.
    pub reason: SkipReason,
    /// Compacted source text.
    pub snippet: String,
}

/// A per-table row count that was estimated rather than annotated.
///
/// Mirrors [`WidthFallback`]: the cost model needs *some* `n_{a,q}` per
/// touched table, and when the log carries no `rows=` annotation the miner
/// derives one — confidently (all primary-key columns equality-bound ⇒
/// exactly one row) or as a guess (`default_rows` scaled by `sel=`).
#[derive(Debug, Clone, PartialEq)]
pub struct RowEstimate {
    /// 1-based source line of the statement.
    pub line: u32,
    /// The table whose row count was estimated.
    pub table: String,
    /// The estimate that was used.
    pub rows: f64,
    /// `true` when derived from a full primary-key equality binding
    /// (principled); `false` for the default-value guess.
    pub pk_equality: bool,
    /// Compacted source text.
    pub snippet: String,
}

/// How much a template's scaled frequency can be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfidenceLevel {
    /// Seen often enough that the population estimate is sound.
    Ok,
    /// Seen fewer times than [`crate::IngestOptions::confidence_min_calls`]:
    /// the scaled-up frequency rests on too few observations to trust.
    LowConfidence,
}

impl fmt::Display for ConfidenceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Ok => "ok",
            Self::LowConfidence => "low confidence",
        })
    }
}

/// Per-template sampling confidence, emitted when ingesting under a
/// `sample_rate` below 1: the observed count is what the (sampled) input
/// contained, the scaled count is the population estimate that reached the
/// cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceEntry {
    /// The transaction template's name.
    pub txn: String,
    /// Executions observed in the sampled input.
    pub observed: f64,
    /// Population estimate (`observed / sample_rate`) used as frequency.
    pub scaled: f64,
    /// Whether the observation count clears the confidence threshold.
    pub level: ConfidenceLevel,
}

/// A column whose SQL type had no principled width; the fallback was used.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthFallback {
    /// Owning table.
    pub table: String,
    /// Column name.
    pub column: String,
    /// The declared SQL type (uppercased).
    pub sql_type: String,
    /// The width that was assumed.
    pub width: f64,
}

/// Per-run ingestion diagnostics and headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Tables in the ingested schema.
    pub tables: usize,
    /// Attributes in the ingested schema (the model's `|A|`).
    pub attrs: usize,
    /// Distinct transaction templates (the model's `|T|`).
    pub txns: usize,
    /// Modeled queries (UPDATE splits count as two).
    pub queries: usize,
    /// Statements seen in the query log.
    pub statements_seen: usize,
    /// Statements that contributed workload.
    pub statements_ingested: usize,
    /// Total transaction executions observed (duplicates aggregated).
    pub txn_occurrences: usize,
    /// Skipped statements with reasons.
    pub skipped: Vec<Skipped>,
    /// Width guesses made while reading the DDL.
    pub width_fallbacks: Vec<WidthFallback>,
    /// Row counts derived instead of annotated (PK equality or default).
    pub row_estimates: Vec<RowEstimate>,
    /// The sample rate frequencies were scaled by (1 = complete input).
    pub sample_rate: f64,
    /// Per-template sampling confidence (empty when `sample_rate` is 1).
    pub confidence: Vec<ConfidenceEntry>,
}

impl Default for IngestReport {
    fn default() -> Self {
        Self {
            tables: 0,
            attrs: 0,
            txns: 0,
            queries: 0,
            statements_seen: 0,
            statements_ingested: 0,
            txn_occurrences: 0,
            skipped: Vec::new(),
            width_fallbacks: Vec::new(),
            row_estimates: Vec::new(),
            sample_rate: 1.0,
            confidence: Vec::new(),
        }
    }
}

impl IngestReport {
    /// True when nothing was skipped and nothing was guessed. Primary-key
    /// row estimates do not count as losses (they are exact); default
    /// row guesses do. Low-confidence templates are a separate axis — see
    /// [`IngestReport::low_confidence`].
    pub fn is_lossless(&self) -> bool {
        self.skipped.is_empty()
            && self.width_fallbacks.is_empty()
            && self.row_estimates.iter().all(|e| e.pk_equality)
    }

    /// The templates whose scaled frequency rests on too few observations.
    pub fn low_confidence(&self) -> impl Iterator<Item = &ConfidenceEntry> {
        self.confidence
            .iter()
            .filter(|c| c.level == ConfidenceLevel::LowConfidence)
    }

    /// True when any skip or low-confidence diagnostic is present — the
    /// condition `vpart ingest --strict` fails on.
    pub fn has_diagnostics(&self) -> bool {
        !self.skipped.is_empty() || self.low_confidence().next().is_some()
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ingested {} tables / {} attributes, {} transactions / {} queries",
            self.tables, self.attrs, self.txns, self.queries
        )?;
        writeln!(
            f,
            "log: {}/{} statements ingested over {} transaction executions",
            self.statements_ingested, self.statements_seen, self.txn_occurrences
        )?;
        for w in &self.width_fallbacks {
            writeln!(
                f,
                "  width fallback: {}.{} ({}) assumed {} bytes",
                w.table, w.column, w.sql_type, w.width
            )?;
        }
        for e in &self.row_estimates {
            writeln!(
                f,
                "  row estimate line {}: {} = {} rows ({}) — {}",
                e.line,
                e.table,
                e.rows,
                if e.pk_equality {
                    "primary-key equality"
                } else {
                    "default guess; annotate with rows="
                },
                e.snippet
            )?;
        }
        for s in &self.skipped {
            writeln!(f, "  skipped line {}: {} — {}", s.line, s.reason, s.snippet)?;
        }
        if self.sample_rate < 1.0 {
            writeln!(
                f,
                "sampling: frequencies scaled by 1/{} to population estimates",
                self.sample_rate
            )?;
            for c in self.low_confidence() {
                writeln!(
                    f,
                    "  low confidence: {} seen {} times (scaled to {}) — too few \
                     observations to trust",
                    c.txn, c.observed, c.scaled
                )?;
            }
        }
        if self.is_lossless() && !self.has_diagnostics() {
            writeln!(f, "no statements skipped, no statistics guessed")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summarizes_losses() {
        let r = IngestReport {
            tables: 2,
            attrs: 9,
            txns: 3,
            queries: 7,
            statements_seen: 10,
            statements_ingested: 8,
            txn_occurrences: 5,
            skipped: vec![Skipped {
                line: 4,
                reason: SkipReason::Subquery,
                snippet: "SELECT a FROM t UNION SELECT b FROM u".into(),
            }],
            width_fallbacks: vec![WidthFallback {
                table: "t".into(),
                column: "c".into(),
                sql_type: "TEXT".into(),
                width: 64.0,
            }],
            row_estimates: vec![RowEstimate {
                line: 6,
                table: "t".into(),
                rows: 1.0,
                pk_equality: true,
                snippet: "SELECT c FROM t WHERE id = ?".into(),
            }],
            ..IngestReport::default()
        };
        assert!(!r.is_lossless());
        let text = r.to_string();
        assert!(text.contains("8/10 statements"));
        assert!(text.contains("UNION"));
        assert!(text.contains("t.c (TEXT) assumed 64 bytes"));
        assert!(text.contains("primary-key equality"));
    }

    #[test]
    fn pk_estimates_are_not_losses_but_guesses_are() {
        let mut r = IngestReport {
            row_estimates: vec![RowEstimate {
                line: 1,
                table: "t".into(),
                rows: 1.0,
                pk_equality: true,
                snippet: "…".into(),
            }],
            ..IngestReport::default()
        };
        assert!(r.is_lossless());
        r.row_estimates.push(RowEstimate {
            line: 2,
            table: "t".into(),
            rows: 5.0,
            pk_equality: false,
            snippet: "…".into(),
        });
        assert!(!r.is_lossless());
        assert!(r.to_string().contains("default guess"));
    }

    #[test]
    fn lossless_report_says_so() {
        let r = IngestReport::default();
        assert!(r.is_lossless());
        assert!(r.to_string().contains("no statements skipped"));
    }

    #[test]
    fn low_confidence_is_a_diagnostic_but_not_a_loss() {
        let r = IngestReport {
            sample_rate: 0.01,
            confidence: vec![
                ConfidenceEntry {
                    txn: "hot".into(),
                    observed: 500.0,
                    scaled: 50_000.0,
                    level: ConfidenceLevel::Ok,
                },
                ConfidenceEntry {
                    txn: "rare".into(),
                    observed: 2.0,
                    scaled: 200.0,
                    level: ConfidenceLevel::LowConfidence,
                },
            ],
            ..IngestReport::default()
        };
        assert!(r.is_lossless(), "confidence is orthogonal to losses");
        assert!(r.has_diagnostics());
        assert_eq!(r.low_confidence().count(), 1);
        let text = r.to_string();
        assert!(text.contains("scaled by 1/0.01"));
        assert!(text.contains("low confidence: rare seen 2 times"));
        assert!(!text.contains("hot seen"), "only low entries are printed");
    }
}
