//! Ingestion diagnostics: what was read, what was guessed, what was lost.
//!
//! Ingestion is deliberately lossy for SQL this parser does not model
//! (joins, subqueries, vendor DDL, ...). The [`IngestReport`] makes every
//! loss visible — skipped statements with reasons and source snippets,
//! width guesses for unbounded types — so a user can judge whether the
//! resulting instance still represents their workload.

use std::fmt;

/// Why a statement was skipped instead of ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// A multi-table write target (`UPDATE a, b SET ...`); plain joined
    /// `SELECT`s flatten into per-table accesses instead.
    Join,
    /// A `SELECT` shape that cannot be flattened per table (`UNION`,
    /// derived tables in `FROM`, ...); parenthesized predicate and
    /// select-list subqueries flatten instead.
    Subquery,
    /// Statement kind outside the supported DML subset (DDL, `SET`,
    /// `EXPLAIN`, vendor commands, ...).
    NotADmlStatement,
    /// The statement parsed to an empty attribute set (nothing to cost).
    NoColumns,
    /// A `BEGIN ... ROLLBACK` block: its work was undone, so it
    /// contributes no workload.
    RolledBack,
    /// Statement referenced an unknown table or column (lenient mode only;
    /// strict mode raises [`crate::IngestError`] instead).
    UnknownReference,
    /// The statement's grammar could not be parsed (lenient mode only).
    Unparsable,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Join => "multi-table write targets are not supported",
            Self::Subquery => "cannot be flattened per table (UNION, derived table, ...)",
            Self::NotADmlStatement => "not a supported DML statement",
            Self::NoColumns => "no referenced columns",
            Self::RolledBack => "transaction rolled back",
            Self::UnknownReference => "unknown table or column",
            Self::Unparsable => "could not parse",
        };
        f.write_str(s)
    }
}

/// One skipped statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Skipped {
    /// 1-based source line.
    pub line: u32,
    /// Why it was skipped.
    pub reason: SkipReason,
    /// Compacted source text.
    pub snippet: String,
}

/// A per-table row count that was estimated rather than annotated.
///
/// Mirrors [`WidthFallback`]: the cost model needs *some* `n_{a,q}` per
/// touched table, and when the log carries no `rows=` annotation the miner
/// derives one — confidently (all primary-key columns equality-bound ⇒
/// exactly one row) or as a guess (`default_rows` scaled by `sel=`).
#[derive(Debug, Clone, PartialEq)]
pub struct RowEstimate {
    /// 1-based source line of the statement.
    pub line: u32,
    /// The table whose row count was estimated.
    pub table: String,
    /// The estimate that was used.
    pub rows: f64,
    /// `true` when derived from a full primary-key equality binding
    /// (principled); `false` for the default-value guess.
    pub pk_equality: bool,
    /// Compacted source text.
    pub snippet: String,
}

/// A column whose SQL type had no principled width; the fallback was used.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthFallback {
    /// Owning table.
    pub table: String,
    /// Column name.
    pub column: String,
    /// The declared SQL type (uppercased).
    pub sql_type: String,
    /// The width that was assumed.
    pub width: f64,
}

/// Per-run ingestion diagnostics and headline numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Tables in the ingested schema.
    pub tables: usize,
    /// Attributes in the ingested schema (the model's `|A|`).
    pub attrs: usize,
    /// Distinct transaction templates (the model's `|T|`).
    pub txns: usize,
    /// Modeled queries (UPDATE splits count as two).
    pub queries: usize,
    /// Statements seen in the query log.
    pub statements_seen: usize,
    /// Statements that contributed workload.
    pub statements_ingested: usize,
    /// Total transaction executions observed (duplicates aggregated).
    pub txn_occurrences: usize,
    /// Skipped statements with reasons.
    pub skipped: Vec<Skipped>,
    /// Width guesses made while reading the DDL.
    pub width_fallbacks: Vec<WidthFallback>,
    /// Row counts derived instead of annotated (PK equality or default).
    pub row_estimates: Vec<RowEstimate>,
}

impl IngestReport {
    /// True when nothing was skipped and nothing was guessed. Primary-key
    /// row estimates do not count as losses (they are exact); default
    /// row guesses do.
    pub fn is_lossless(&self) -> bool {
        self.skipped.is_empty()
            && self.width_fallbacks.is_empty()
            && self.row_estimates.iter().all(|e| e.pk_equality)
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ingested {} tables / {} attributes, {} transactions / {} queries",
            self.tables, self.attrs, self.txns, self.queries
        )?;
        writeln!(
            f,
            "log: {}/{} statements ingested over {} transaction executions",
            self.statements_ingested, self.statements_seen, self.txn_occurrences
        )?;
        for w in &self.width_fallbacks {
            writeln!(
                f,
                "  width fallback: {}.{} ({}) assumed {} bytes",
                w.table, w.column, w.sql_type, w.width
            )?;
        }
        for e in &self.row_estimates {
            writeln!(
                f,
                "  row estimate line {}: {} = {} rows ({}) — {}",
                e.line,
                e.table,
                e.rows,
                if e.pk_equality {
                    "primary-key equality"
                } else {
                    "default guess; annotate with rows="
                },
                e.snippet
            )?;
        }
        for s in &self.skipped {
            writeln!(f, "  skipped line {}: {} — {}", s.line, s.reason, s.snippet)?;
        }
        if self.is_lossless() {
            writeln!(f, "no statements skipped, no statistics guessed")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summarizes_losses() {
        let r = IngestReport {
            tables: 2,
            attrs: 9,
            txns: 3,
            queries: 7,
            statements_seen: 10,
            statements_ingested: 8,
            txn_occurrences: 5,
            skipped: vec![Skipped {
                line: 4,
                reason: SkipReason::Subquery,
                snippet: "SELECT a FROM t UNION SELECT b FROM u".into(),
            }],
            width_fallbacks: vec![WidthFallback {
                table: "t".into(),
                column: "c".into(),
                sql_type: "TEXT".into(),
                width: 64.0,
            }],
            row_estimates: vec![RowEstimate {
                line: 6,
                table: "t".into(),
                rows: 1.0,
                pk_equality: true,
                snippet: "SELECT c FROM t WHERE id = ?".into(),
            }],
        };
        assert!(!r.is_lossless());
        let text = r.to_string();
        assert!(text.contains("8/10 statements"));
        assert!(text.contains("UNION"));
        assert!(text.contains("t.c (TEXT) assumed 64 bytes"));
        assert!(text.contains("primary-key equality"));
    }

    #[test]
    fn pk_estimates_are_not_losses_but_guesses_are() {
        let mut r = IngestReport {
            row_estimates: vec![RowEstimate {
                line: 1,
                table: "t".into(),
                rows: 1.0,
                pk_equality: true,
                snippet: "…".into(),
            }],
            ..IngestReport::default()
        };
        assert!(r.is_lossless());
        r.row_estimates.push(RowEstimate {
            line: 2,
            table: "t".into(),
            rows: 5.0,
            pk_equality: false,
            snippet: "…".into(),
        });
        assert!(!r.is_lossless());
        assert!(r.to_string().contains("default guess"));
    }

    #[test]
    fn lossless_report_says_so() {
        let r = IngestReport::default();
        assert!(r.is_lossless());
        assert!(r.to_string().contains("no statements skipped"));
    }
}
