//! Query-log mining: statements → transactions → aggregated workload.
//!
//! Statements between `BEGIN`/`COMMIT` brackets form one transaction
//! occurrence; statements outside brackets are one-statement transactions
//! (the fallback for logs without explicit bracketing). Occurrences whose
//! parsed statement sequences coincide are aggregated into one
//! *transaction template* whose execution count becomes the query
//! frequency `f_q` — so a log with the Payment transaction 10 000 times
//! produces one `Payment` template at frequency 10 000, exactly the
//! workload statistics the cost model wants.
//!
//! `UPDATE` statements are split into a read sub-query over every
//! referenced attribute and a write sub-query over the written attributes
//! via [`vpart_model::WorkloadBuilder::add_update`], mirroring the
//! hand-built TPC-C model (§5.2 of the paper).
//!
//! Annotations refine the statistics: `-- rows=N` sets a statement's
//! per-table row count, `-- freq=N` scales an occurrence (on `BEGIN` or a
//! bare statement) or one statement's per-execution multiplicity (inside a
//! block), and `-- txn=Name` names the template.

use crate::error::IngestError;
use crate::report::{SkipReason, Skipped};
use crate::stmt::{parse_statement, statement_stats, Parsed, ParsedDml, StmtKind};
use crate::IngestOptions;
use std::collections::HashMap;
use vpart_model::{Schema, Workload};

/// Log-mining statistics feeding the ingest report.
#[derive(Debug, Clone, Default)]
pub struct MinerStats {
    /// Statements seen in the log (transaction brackets excluded).
    pub statements_seen: usize,
    /// Statements that contributed workload.
    pub statements_ingested: usize,
    /// Transaction occurrences observed before aggregation.
    pub txn_occurrences: usize,
    /// Skipped statements.
    pub skipped: Vec<Skipped>,
}

/// A statement inside a transaction template with its per-execution
/// multiplicity (> 1 when the statement repeats within one transaction).
#[derive(Debug, Clone)]
struct TemplateStmt {
    dml: ParsedDml,
    mult: f64,
}

/// An aggregated transaction template.
#[derive(Debug, Clone)]
struct Template {
    name: Option<String>,
    stmts: Vec<TemplateStmt>,
    /// Total observed executions (sum of occurrence weights).
    weight: f64,
}

/// One observed transaction before aggregation.
struct Occurrence {
    name: Option<String>,
    stmts: Vec<TemplateStmt>,
    weight: f64,
}

/// Structural identity of a statement, for aggregation.
type StmtKey = (StmtKind, u32, Vec<u32>, Vec<u32>, u64, u64);

fn stmt_key(s: &TemplateStmt) -> StmtKey {
    (
        s.dml.kind,
        s.dml.table.0,
        s.dml.read.iter().map(|a| a.0).collect(),
        s.dml.write.iter().map(|a| a.0).collect(),
        s.dml.rows.to_bits(),
        (s.dml.freq * s.mult).to_bits(),
    )
}

fn occurrence_key(o: &Occurrence) -> Vec<StmtKey> {
    o.stmts.iter().map(stmt_key).collect()
}

/// Merges duplicate statements within one occurrence into multiplicities.
fn coalesce(stmts: Vec<ParsedDml>) -> Vec<TemplateStmt> {
    let mut out: Vec<TemplateStmt> = Vec::new();
    for dml in stmts {
        if let Some(prev) = out.iter_mut().find(|t| {
            t.dml.kind == dml.kind
                && t.dml.table == dml.table
                && t.dml.read == dml.read
                && t.dml.write == dml.write
                && t.dml.rows == dml.rows
        }) {
            prev.mult += dml.freq;
        } else {
            let freq = dml.freq;
            out.push(TemplateStmt { dml, mult: freq });
        }
    }
    for t in &mut out {
        t.dml.freq = 1.0; // folded into mult
    }
    out
}

/// Mines `log` into a [`Workload`] against `schema`.
pub fn mine_workload(
    log: &str,
    schema: &Schema,
    opts: &IngestOptions,
) -> Result<(Workload, MinerStats), IngestError> {
    let statements = crate::lexer::split_statements(log)?;
    if statements.is_empty() {
        return Err(IngestError::EmptyLog);
    }

    let mut stats = MinerStats::default();
    let mut occurrences: Vec<Occurrence> = Vec::new();
    // Open BEGIN block: (line of BEGIN, pending statements, name, weight).
    let mut open: Option<(u32, Vec<ParsedDml>, Option<String>, f64)> = None;
    // Raw statements of the open block, for rollback diagnostics.
    let mut open_raws: Vec<(u32, String)> = Vec::new();

    for stmt in &statements {
        let parsed = parse_statement(stmt, schema, opts.strict)?;
        match parsed {
            Parsed::Begin => {
                if open.is_some() {
                    return Err(IngestError::NestedTransaction { line: stmt.line });
                }
                let (_, weight) = statement_stats(stmt)?;
                let name = stmt.annotation("txn").map(str::to_string);
                open = Some((stmt.line, Vec::new(), name, weight));
                open_raws.clear();
            }
            Parsed::Commit => {
                let Some((_, stmts, name, weight)) = open.take() else {
                    return Err(IngestError::CommitOutsideTransaction { line: stmt.line });
                };
                let name = name.or_else(|| stmt.annotation("txn").map(str::to_string));
                if !stmts.is_empty() {
                    stats.txn_occurrences += 1;
                    occurrences.push(Occurrence {
                        name,
                        stmts: coalesce(stmts),
                        weight,
                    });
                }
            }
            Parsed::Rollback => {
                let Some((_, stmts, _, _)) = open.take() else {
                    return Err(IngestError::CommitOutsideTransaction { line: stmt.line });
                };
                stats.statements_ingested -= stmts.len();
                for (line, snippet) in open_raws.drain(..) {
                    stats.skipped.push(Skipped {
                        line,
                        reason: SkipReason::RolledBack,
                        snippet,
                    });
                }
            }
            Parsed::Dml(dml) => {
                stats.statements_seen += 1;
                stats.statements_ingested += 1;
                match &mut open {
                    Some((_, stmts, name, _)) => {
                        if name.is_none() {
                            *name = stmt.annotation("txn").map(str::to_string);
                        }
                        stmts.push(dml);
                        open_raws.push((stmt.line, stmt.snippet.clone()));
                    }
                    None => {
                        let weight = dml.freq;
                        let mut dml = dml;
                        dml.freq = 1.0;
                        stats.txn_occurrences += 1;
                        occurrences.push(Occurrence {
                            name: stmt.annotation("txn").map(str::to_string),
                            stmts: coalesce(vec![dml]),
                            weight,
                        });
                    }
                }
            }
            Parsed::Skip(reason) => {
                stats.statements_seen += 1;
                stats.skipped.push(Skipped {
                    line: stmt.line,
                    reason,
                    snippet: stmt.snippet.clone(),
                });
            }
        }
    }
    if let Some((line, _, _, _)) = open {
        return Err(IngestError::UnterminatedTransaction { line });
    }
    if occurrences.is_empty() {
        return Err(if stats.statements_seen == 0 {
            IngestError::EmptyLog
        } else {
            IngestError::NothingIngested {
                statements: stats.statements_seen,
            }
        });
    }

    // Aggregate occurrences into templates.
    let mut templates: Vec<Template> = Vec::new();
    let mut index: HashMap<Vec<StmtKey>, usize> = HashMap::new();
    for occ in occurrences {
        match index.entry(occurrence_key(&occ)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let t = &mut templates[*e.get()];
                t.weight += occ.weight;
                if t.name.is_none() {
                    t.name = occ.name;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(templates.len());
                templates.push(Template {
                    name: occ.name,
                    stmts: occ.stmts,
                    weight: occ.weight,
                });
            }
        }
    }

    // Build the workload.
    let mut wb = Workload::builder(schema);
    let mut used_names: HashMap<String, usize> = HashMap::new();
    for (i, tpl) in templates.iter().enumerate() {
        let base = tpl.name.clone().unwrap_or_else(|| format!("txn{i}"));
        let n = used_names.entry(base.clone()).or_insert(0);
        *n += 1;
        let txn_name = if *n == 1 { base } else { format!("{base}#{n}") };
        let mut qids = Vec::new();
        for (j, ts) in tpl.stmts.iter().enumerate() {
            let d = &ts.dml;
            let table_name = schema.tables()[d.table.index()].name.to_ascii_lowercase();
            let qname = format!("{txn_name}/{j}:{}_{}", d.kind.verb(), table_name);
            let freq = tpl.weight * ts.mult;
            match d.kind {
                StmtKind::Update => {
                    let (r, w) =
                        wb.add_update(&qname, freq, &d.read, &d.write, &[(d.table, d.rows)])?;
                    qids.push(r);
                    qids.push(w);
                }
                StmtKind::Select => {
                    let spec = vpart_model::workload::QuerySpec::read(&qname)
                        .access(&d.read)
                        .frequency(freq)
                        .default_rows(d.rows);
                    qids.push(wb.add_query(spec)?);
                }
                StmtKind::Insert | StmtKind::Delete => {
                    let spec = vpart_model::workload::QuerySpec::write(&qname)
                        .access(&d.write)
                        .frequency(freq)
                        .default_rows(d.rows);
                    qids.push(wb.add_query(spec)?);
                }
            }
        }
        wb.transaction(&txn_name, &qids)?;
    }
    Ok((wb.build()?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::QueryKind;

    fn schema() -> Schema {
        let mut b = Schema::builder();
        b.table("acct", &[("id", 4.0), ("owner", 16.0), ("bal", 8.0)])
            .unwrap();
        b.table("log", &[("id", 4.0), ("amount", 8.0)]).unwrap();
        b.build().unwrap()
    }

    fn opts() -> IngestOptions {
        IngestOptions::default()
    }

    #[test]
    fn bare_statements_become_single_statement_txns() {
        let s = schema();
        let (w, stats) = mine_workload(
            "SELECT bal FROM acct WHERE id = 1;\nINSERT INTO log VALUES (1, 2.5);",
            &s,
            &opts(),
        )
        .unwrap();
        assert_eq!(w.n_txns(), 2);
        assert_eq!(w.n_queries(), 2);
        assert_eq!(stats.txn_occurrences, 2);
        assert_eq!(stats.statements_ingested, 2);
    }

    #[test]
    fn duplicate_occurrences_aggregate_into_frequency() {
        let s = schema();
        let log = "SELECT bal FROM acct WHERE id = 1;\n".repeat(5)
            + "SELECT bal FROM acct WHERE id = 99;\n"
            + "SELECT owner FROM acct WHERE id = 2;";
        let (w, stats) = mine_workload(&log, &s, &opts()).unwrap();
        // Literals are not part of the template key: the six bal-selects
        // collapse into one template at frequency 6.
        assert_eq!(w.n_txns(), 2);
        assert_eq!(stats.txn_occurrences, 7);
        let q = w.query(vpart_model::QueryId(0));
        assert_eq!(q.frequency, 6.0);
    }

    #[test]
    fn begin_commit_groups_and_names_transactions() {
        let s = schema();
        let log = "BEGIN; -- txn=transfer\n\
                   SELECT bal FROM acct WHERE id = 1;\n\
                   UPDATE acct SET bal = bal - 10 WHERE id = 1;\n\
                   INSERT INTO log (id, amount) VALUES (1, 10);\n\
                   COMMIT;\n\
                   BEGIN;\n\
                   SELECT bal FROM acct WHERE id = 2;\n\
                   UPDATE acct SET bal = bal - 10 WHERE id = 2;\n\
                   INSERT INTO log (id, amount) VALUES (2, 10);\n\
                   COMMIT;";
        let (w, stats) = mine_workload(log, &s, &opts()).unwrap();
        assert_eq!(w.n_txns(), 1, "identical blocks aggregate");
        assert_eq!(stats.txn_occurrences, 2);
        let t = w.txn_by_name("transfer").expect("named via annotation");
        // select + update(read+write) + insert = 4 modeled queries.
        assert_eq!(w.txn(t).queries.len(), 4);
        for &q in &w.txn(t).queries {
            assert_eq!(w.query(q).frequency, 2.0);
        }
        let upd_w = w.query_by_name("transfer/1:update_acct/write").unwrap();
        assert_eq!(w.query(upd_w).kind, QueryKind::Write);
        assert_eq!(w.query(upd_w).attrs.len(), 1);
    }

    #[test]
    fn freq_annotation_scales_occurrences() {
        let s = schema();
        let (w, _) = mine_workload(
            "SELECT /*+ freq=10 */ bal FROM acct WHERE id = 1;",
            &s,
            &opts(),
        )
        .unwrap();
        assert_eq!(w.query(vpart_model::QueryId(0)).frequency, 10.0);
    }

    #[test]
    fn repeated_statement_within_txn_gets_multiplicity() {
        let s = schema();
        let log = "BEGIN;\n\
                   SELECT bal FROM acct WHERE id = 1;\n\
                   SELECT bal FROM acct WHERE id = 7;\n\
                   COMMIT;";
        let (w, _) = mine_workload(log, &s, &opts()).unwrap();
        assert_eq!(w.n_queries(), 1);
        assert_eq!(w.query(vpart_model::QueryId(0)).frequency, 2.0);
    }

    #[test]
    fn rollback_discards_the_block() {
        let s = schema();
        let log = "BEGIN;\n\
                   UPDATE acct SET bal = 0 WHERE id = 1;\n\
                   ROLLBACK;\n\
                   SELECT bal FROM acct WHERE id = 1;";
        let (w, stats) = mine_workload(log, &s, &opts()).unwrap();
        assert_eq!(w.n_txns(), 1);
        assert_eq!(stats.skipped.len(), 1);
        assert_eq!(stats.skipped[0].reason, SkipReason::RolledBack);
    }

    #[test]
    fn bracket_errors_are_typed() {
        let s = schema();
        assert_eq!(
            mine_workload("BEGIN;\nSELECT bal FROM acct WHERE id=1;", &s, &opts()).unwrap_err(),
            IngestError::UnterminatedTransaction { line: 1 }
        );
        assert_eq!(
            mine_workload("BEGIN;\nBEGIN;\nCOMMIT;", &s, &opts()).unwrap_err(),
            IngestError::NestedTransaction { line: 2 }
        );
        assert_eq!(
            mine_workload("COMMIT;", &s, &opts()).unwrap_err(),
            IngestError::CommitOutsideTransaction { line: 1 }
        );
        assert_eq!(
            mine_workload("", &s, &opts()).unwrap_err(),
            IngestError::EmptyLog
        );
        assert_eq!(
            mine_workload("VACUUM;", &s, &opts()).unwrap_err(),
            IngestError::NothingIngested { statements: 1 }
        );
    }

    #[test]
    fn rows_annotation_reaches_the_model() {
        let s = schema();
        let (w, _) = mine_workload(
            "SELECT /*+ rows=10 */ owner FROM acct WHERE id < 100;",
            &s,
            &opts(),
        )
        .unwrap();
        let q = w.query(vpart_model::QueryId(0));
        assert_eq!(q.rows_for_table(vpart_model::TableId(0)), 10.0);
    }
}
