//! Single-statement DML parsing: column extraction per statement kind.
//!
//! The extraction rules mirror how `vpart_instances::tpcc` models TPC-C by
//! hand (selection predicates count as attribute accesses, UPDATEs carry
//! both the referenced and the written sets so the miner can split them):
//!
//! * `SELECT` — read over select-list ∪ `WHERE`/`GROUP BY`/`ORDER BY`
//!   columns; `*` means every column of the table.
//! * `INSERT` — write over the listed columns (all columns without a
//!   list); the number of `VALUES` tuples becomes the row count.
//! * `UPDATE` — written set = `SET` targets; referenced set = `SET`
//!   right-hand-side columns ∪ `WHERE` columns.
//! * `DELETE` — write over the `WHERE` columns (whole table without a
//!   predicate). Row removal touches whole rows, but under the paper's
//!   all-attributes write accounting the β-terms already charge every
//!   replicated attribute of the table, so the predicate set is the
//!   faithful α.
//!
//! Joins, subqueries and `INSERT ... SELECT` are unsupported; the caller
//! decides (strict vs lenient) whether unknown tables/columns abort
//! ingestion or skip the statement.

use crate::error::IngestError;
use crate::lexer::{RawStatement, Tok, Token};
use crate::report::SkipReason;
use vpart_model::{AttrId, Schema, TableId};

/// Non-column identifiers that may appear inside expressions and clause
/// tails (checked uppercased).
const KEYWORDS: &[&str] = &[
    "ALL",
    "AND",
    "ANY",
    "AS",
    "ASC",
    "BETWEEN",
    "BY",
    "CASE",
    "CAST",
    "CROSS",
    "CURRENT_DATE",
    "CURRENT_TIME",
    "CURRENT_TIMESTAMP",
    "DESC",
    "DISTINCT",
    "ELSE",
    "END",
    "ESCAPE",
    "EXISTS",
    "FALSE",
    "FOR",
    "FULL",
    "GROUP",
    "HAVING",
    "ILIKE",
    "IN",
    "INNER",
    "INTERVAL",
    "IS",
    "JOIN",
    "LEFT",
    "LIKE",
    "LIMIT",
    "NATURAL",
    "NOT",
    "NULL",
    "OF",
    "OFFSET",
    "ON",
    "OR",
    "ORDER",
    "OUTER",
    "RIGHT",
    "SET",
    "SOME",
    "THEN",
    "TRUE",
    "UPDATE",
    "USING",
    "VALUES",
    "WHEN",
    "WHERE",
];

/// What kind of DML a parsed statement is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StmtKind {
    /// `SELECT` — a read query.
    Select,
    /// `INSERT` — a write query.
    Insert,
    /// `UPDATE` — split into read + write sub-queries by the miner.
    Update,
    /// `DELETE` — a write query.
    Delete,
}

impl StmtKind {
    /// Lowercase verb for query naming.
    pub fn verb(self) -> &'static str {
        match self {
            StmtKind::Select => "select",
            StmtKind::Insert => "insert",
            StmtKind::Update => "update",
            StmtKind::Delete => "delete",
        }
    }
}

/// A successfully parsed DML statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedDml {
    /// Statement kind.
    pub kind: StmtKind,
    /// The single target table.
    pub table: TableId,
    /// Referenced (read) attributes, sorted and deduplicated. For
    /// `SELECT` this is the full accessed set; for `UPDATE` the
    /// referenced-but-not-necessarily-written set.
    pub read: Vec<AttrId>,
    /// Written attributes, sorted and deduplicated (empty for `SELECT`).
    pub write: Vec<AttrId>,
    /// Average rows accessed per execution (`n_{a,q}`).
    pub rows: f64,
    /// Frequency weight of one log occurrence (`freq=` annotation, else 1).
    pub freq: f64,
}

/// Outcome of parsing one raw statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// A DML statement contributing workload.
    Dml(ParsedDml),
    /// `BEGIN` / `START TRANSACTION`.
    Begin,
    /// `COMMIT` / `END`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
    /// Skipped with a reason (always returned in lenient mode; in strict
    /// mode only for reasons that are not schema/log mismatches).
    Skip(SkipReason),
}

/// Parses one statement against `schema`.
///
/// `strict` controls whether unknown tables/columns and in-statement
/// grammar violations are hard [`IngestError`]s or lenient
/// [`Parsed::Skip`]s.
pub fn parse_statement(
    stmt: &RawStatement,
    schema: &Schema,
    strict: bool,
) -> Result<Parsed, IngestError> {
    let head = match stmt.head() {
        Some(h) => h,
        None => return Ok(Parsed::Skip(SkipReason::NotADmlStatement)),
    };
    let result = match head.as_str() {
        "BEGIN" | "START" => return Ok(Parsed::Begin),
        "COMMIT" | "END" => return Ok(Parsed::Commit),
        "ROLLBACK" => return Ok(Parsed::Rollback),
        "SELECT" => parse_select(stmt, schema),
        "INSERT" => parse_insert(stmt, schema),
        "UPDATE" => parse_update(stmt, schema),
        "DELETE" => parse_delete(stmt, schema),
        _ => return Ok(Parsed::Skip(SkipReason::NotADmlStatement)),
    };
    match result {
        Ok(parsed) => Ok(parsed),
        Err(e) if strict => Err(e),
        Err(IngestError::UnknownTable { .. } | IngestError::UnknownColumn { .. }) => {
            Ok(Parsed::Skip(SkipReason::UnknownReference))
        }
        Err(IngestError::Syntax { .. }) => Ok(Parsed::Skip(SkipReason::Unparsable)),
        Err(e) => Err(e),
    }
}

/// Reads the `rows=` / `freq=` annotations of a statement.
pub fn statement_stats(stmt: &RawStatement) -> Result<(Option<f64>, f64), IngestError> {
    let parse_pos = |key: &str| -> Result<Option<f64>, IngestError> {
        match stmt.annotation(key) {
            None => Ok(None),
            Some(v) => match v.parse::<f64>() {
                Ok(x) if x > 0.0 && x.is_finite() => Ok(Some(x)),
                _ => Err(IngestError::Syntax {
                    line: stmt.line,
                    expected: format!("a positive number in the {key}= annotation"),
                    found: format!("{v:?}"),
                }),
            },
        }
    };
    let rows = parse_pos("rows")?;
    let freq = parse_pos("freq")?.unwrap_or(1.0);
    Ok((rows, freq))
}

// ---------------------------------------------------------------- helpers

fn find_table(schema: &Schema, name: &str, line: u32) -> Result<TableId, IngestError> {
    schema
        .tables()
        .iter()
        .position(|t| t.name.eq_ignore_ascii_case(name))
        .map(TableId::from_index)
        .ok_or_else(|| IngestError::UnknownTable {
            name: name.to_string(),
            line,
        })
}

fn find_attr(
    schema: &Schema,
    table: TableId,
    name: &str,
    line: u32,
) -> Result<AttrId, IngestError> {
    schema
        .table_attrs(table)
        .find(|&a| schema.attrs()[a].name.eq_ignore_ascii_case(name))
        .map(AttrId::from_index)
        .ok_or_else(|| IngestError::UnknownColumn {
            table: schema.tables()[table.index()].name.clone(),
            column: name.to_string(),
            line,
        })
}

fn all_attrs(schema: &Schema, table: TableId) -> Vec<AttrId> {
    schema.table_attrs(table).map(AttrId::from_index).collect()
}

fn is_keyword(word: &str) -> bool {
    KEYWORDS
        .binary_search(&word.to_ascii_uppercase().as_str())
        .is_ok()
}

/// Index of the first depth-0 occurrence of keyword `kw` in `toks`.
fn find_kw(toks: &[Token], kw: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth = depth.saturating_sub(1),
            tok if depth == 0 && tok.is_kw(kw) => return Some(i),
            _ => {}
        }
    }
    None
}

fn contains_subquery(toks: &[Token]) -> bool {
    toks.iter().skip(1).any(|t| t.tok.is_kw("SELECT"))
}

fn syntax(stmt: &RawStatement, i: usize, expected: &str) -> IngestError {
    let (line, found) = match stmt.tokens.get(i) {
        Some(t) => (t.line, format!("{:?}", t.tok)),
        None => (stmt.line, "end of statement".to_string()),
    };
    IngestError::Syntax {
        line,
        expected: expected.to_string(),
        found,
    }
}

/// The statement's single target table plus how the statement refers to it.
#[derive(Debug, Clone)]
struct TableRef {
    table: TableId,
    /// Alias bound in the statement (`FROM customer c` / `... AS c`), if any.
    alias: Option<String>,
    /// Token index just past the table reference (incl. any alias).
    end: usize,
}

impl TableRef {
    /// True if `name` refers to this table (by name or alias).
    fn matches(&self, schema: &Schema, name: &str) -> bool {
        schema.tables()[self.table.index()]
            .name
            .eq_ignore_ascii_case(name)
            || self
                .alias
                .as_deref()
                .is_some_and(|a| a.eq_ignore_ascii_case(name))
    }
}

/// Parses a table reference at `toks[i]`:
/// `[schema_qualifier .] name [[AS] alias]`.
fn parse_table_ref(
    stmt: &RawStatement,
    i: usize,
    schema: &Schema,
) -> Result<TableRef, IngestError> {
    let toks = &stmt.tokens;
    let Some(Tok::Ident(first)) = toks.get(i).map(|t| &t.tok) else {
        return Err(syntax(stmt, i, "a table name"));
    };
    let (name, mut j) = if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('.'))) {
        // `schema.table`: the qualifier is ignored (single-namespace model).
        match toks.get(i + 2).map(|t| &t.tok) {
            Some(Tok::Ident(n)) => (n, i + 3),
            _ => {
                return Err(syntax(
                    stmt,
                    i + 2,
                    "a table name after the schema qualifier",
                ))
            }
        }
    } else {
        (first, i + 1)
    };
    let table = find_table(schema, name, toks[i].line)?;
    let mut alias = None;
    if toks.get(j).is_some_and(|t| t.tok.is_kw("AS")) {
        match toks.get(j + 1).map(|t| &t.tok) {
            Some(Tok::Ident(a)) => {
                alias = Some(a.clone());
                j += 2;
            }
            _ => return Err(syntax(stmt, j + 1, "an alias after AS")),
        }
    } else if let Some(Tok::Ident(a)) = toks.get(j).map(|t| &t.tok) {
        // Bare alias — anything that is not a clause keyword.
        if !is_keyword(a) {
            alias = Some(a.clone());
            j += 1;
        }
    }
    Ok(TableRef {
        table,
        alias,
        end: j,
    })
}

/// Collects column references from an expression region.
///
/// Identifiers directly followed by `(` are function names; `qualifier.col`
/// references must name the statement's table (or its alias); the
/// identifier after an `AS` is an output alias, not a column; a bare `*`
/// marks a whole-row reference (also matched by multiplication, which
/// makes the extraction an over-approximation — documented in the crate
/// docs).
fn collect_columns(
    toks: &[Token],
    schema: &Schema,
    tref: &TableRef,
    attrs: &mut Vec<AttrId>,
    star: &mut bool,
) -> Result<(), IngestError> {
    let table = tref.table;
    let mut i = 0usize;
    let mut after_as = false;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('*') => {
                *star = true;
                i += 1;
            }
            Tok::Ident(name) => {
                if after_as {
                    // Output alias (`expr AS name`): not a column.
                    after_as = false;
                    i += 1;
                    continue;
                }
                let next = toks.get(i + 1).map(|t| &t.tok);
                if matches!(next, Some(Tok::Punct('('))) {
                    // Function name; its arguments are scanned as we go.
                    i += 1;
                } else if matches!(next, Some(Tok::Punct('.'))) {
                    if !tref.matches(schema, name) {
                        return Err(IngestError::UnknownColumn {
                            table: name.clone(),
                            column: match toks.get(i + 2).map(|t| &t.tok) {
                                Some(Tok::Ident(c)) => c.clone(),
                                _ => "?".to_string(),
                            },
                            line: toks[i].line,
                        });
                    }
                    match toks.get(i + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(col)) => {
                            attrs.push(find_attr(schema, table, col, toks[i].line)?);
                        }
                        Some(Tok::Punct('*')) => *star = true,
                        _ => {}
                    }
                    i += 3;
                } else if is_keyword(name) {
                    after_as = name.eq_ignore_ascii_case("AS");
                    i += 1;
                } else {
                    attrs.push(find_attr(schema, table, name, toks[i].line)?);
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    Ok(())
}

fn finish_attrs(
    mut attrs: Vec<AttrId>,
    star: bool,
    schema: &Schema,
    table: TableId,
) -> Vec<AttrId> {
    if star {
        return all_attrs(schema, table);
    }
    attrs.sort_unstable();
    attrs.dedup();
    attrs
}

fn build_dml(
    stmt: &RawStatement,
    kind: StmtKind,
    table: TableId,
    read: Vec<AttrId>,
    write: Vec<AttrId>,
    default_rows: f64,
) -> Result<Parsed, IngestError> {
    if read.is_empty() && write.is_empty() {
        return Ok(Parsed::Skip(SkipReason::NoColumns));
    }
    let (rows, freq) = statement_stats(stmt)?;
    Ok(Parsed::Dml(ParsedDml {
        kind,
        table,
        read,
        write,
        rows: rows.unwrap_or(default_rows),
        freq,
    }))
}

// ----------------------------------------------------------- per-statement

fn parse_select(stmt: &RawStatement, schema: &Schema) -> Result<Parsed, IngestError> {
    let toks = &stmt.tokens;
    if contains_subquery(toks) {
        return Ok(Parsed::Skip(SkipReason::Subquery));
    }
    if find_kw(toks, "JOIN").is_some() {
        return Ok(Parsed::Skip(SkipReason::Join));
    }
    let Some(from) = find_kw(toks, "FROM") else {
        return Err(syntax(stmt, toks.len(), "FROM"));
    };
    let tref = parse_table_ref(stmt, from + 1, schema)?;
    if matches!(toks.get(tref.end).map(|t| &t.tok), Some(Tok::Punct(','))) {
        return Ok(Parsed::Skip(SkipReason::Join));
    }

    let mut attrs = Vec::new();
    let mut star = false;
    collect_columns(&toks[1..from], schema, &tref, &mut attrs, &mut star)?;
    collect_columns(&toks[tref.end..], schema, &tref, &mut attrs, &mut star)?;
    let read = finish_attrs(attrs, star, schema, tref.table);
    build_dml(stmt, StmtKind::Select, tref.table, read, Vec::new(), 1.0)
}

fn parse_insert(stmt: &RawStatement, schema: &Schema) -> Result<Parsed, IngestError> {
    let toks = &stmt.tokens;
    if !toks.get(1).is_some_and(|t| t.tok.is_kw("INTO")) {
        return Err(syntax(stmt, 1, "INTO"));
    }
    let tref = parse_table_ref(stmt, 2, schema)?;
    let table = tref.table;
    if contains_subquery(toks) {
        return Ok(Parsed::Skip(SkipReason::InsertFromSelect));
    }

    // Optional column list before VALUES.
    let mut i = tref.end;
    let mut write = Vec::new();
    let mut star = true; // no list → whole row
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('('))) {
        star = false;
        i += 1;
        while let Some(t) = toks.get(i) {
            match &t.tok {
                Tok::Punct(')') => {
                    i += 1;
                    break;
                }
                Tok::Punct(',') => i += 1,
                Tok::Ident(col) => {
                    write.push(find_attr(schema, table, col, t.line)?);
                    i += 1;
                }
                _ => return Err(syntax(stmt, i, "a column name in the insert list")),
            }
        }
    }
    if !toks.get(i).is_some_and(|t| t.tok.is_kw("VALUES")) {
        return Err(syntax(stmt, i, "VALUES"));
    }
    // Row count = number of depth-1 value tuples.
    let mut tuples = 0usize;
    let mut depth = 0usize;
    for t in &toks[i + 1..] {
        match t.tok {
            Tok::Punct('(') => {
                depth += 1;
                if depth == 1 {
                    tuples += 1;
                }
            }
            Tok::Punct(')') => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    if tuples == 0 {
        return Err(syntax(
            stmt,
            toks.len(),
            "a (value, ...) tuple after VALUES",
        ));
    }
    let write = finish_attrs(write, star, schema, table);
    build_dml(
        stmt,
        StmtKind::Insert,
        table,
        Vec::new(),
        write,
        tuples as f64,
    )
}

fn parse_update(stmt: &RawStatement, schema: &Schema) -> Result<Parsed, IngestError> {
    let toks = &stmt.tokens;
    if contains_subquery(toks) {
        return Ok(Parsed::Skip(SkipReason::Subquery));
    }
    let tref = parse_table_ref(stmt, 1, schema)?;
    let table = tref.table;
    if matches!(toks.get(tref.end).map(|t| &t.tok), Some(Tok::Punct(','))) {
        return Ok(Parsed::Skip(SkipReason::Join));
    }
    if !toks.get(tref.end).is_some_and(|t| t.tok.is_kw("SET")) {
        return Err(syntax(stmt, tref.end, "SET"));
    }
    let where_idx = find_kw(toks, "WHERE").unwrap_or(toks.len());
    let assignments = &toks[tref.end + 1..where_idx];

    let mut write = Vec::new();
    let mut read = Vec::new();
    let mut star = false;
    // Split assignments on depth-0 commas: `col = expr`.
    let mut start = 0usize;
    let mut depth = 0usize;
    let mut boundaries = Vec::new();
    for (j, t) in assignments.iter().enumerate() {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth = depth.saturating_sub(1),
            Tok::Punct(',') if depth == 0 => boundaries.push(j),
            _ => {}
        }
    }
    boundaries.push(assignments.len());
    for &end in &boundaries {
        let item = &assignments[start..end];
        start = end + 1;
        if item.is_empty() {
            continue;
        }
        // Target: `col` or `table.col` before `=`.
        let Some(eq) = item.iter().position(|t| matches!(t.tok, Tok::Punct('='))) else {
            return Err(syntax(stmt, 3, "`=` in a SET assignment"));
        };
        let target = &item[..eq];
        let col_tok = target.last();
        let Some(Tok::Ident(col)) = col_tok.map(|t| &t.tok) else {
            return Err(syntax(stmt, 3, "a column name before `=`"));
        };
        write.push(find_attr(schema, table, col, col_tok.unwrap().line)?);
        collect_columns(&item[eq + 1..], schema, &tref, &mut read, &mut star)?;
    }
    if where_idx < toks.len() {
        collect_columns(&toks[where_idx + 1..], schema, &tref, &mut read, &mut star)?;
    }
    if write.is_empty() {
        return Ok(Parsed::Skip(SkipReason::NoColumns));
    }
    let read = finish_attrs(read, star, schema, table);
    let write = finish_attrs(write, false, schema, table);
    build_dml(stmt, StmtKind::Update, table, read, write, 1.0)
}

fn parse_delete(stmt: &RawStatement, schema: &Schema) -> Result<Parsed, IngestError> {
    let toks = &stmt.tokens;
    if contains_subquery(toks) {
        return Ok(Parsed::Skip(SkipReason::Subquery));
    }
    if !toks.get(1).is_some_and(|t| t.tok.is_kw("FROM")) {
        return Err(syntax(stmt, 1, "FROM"));
    }
    let tref = parse_table_ref(stmt, 2, schema)?;
    let table = tref.table;
    let mut attrs = Vec::new();
    let mut star = false;
    match find_kw(toks, "WHERE") {
        Some(w) => collect_columns(&toks[w + 1..], schema, &tref, &mut attrs, &mut star)?,
        None => star = true, // full-table delete touches every column
    }
    let write = finish_attrs(attrs, star, schema, table);
    let write = if write.is_empty() {
        all_attrs(schema, table)
    } else {
        write
    };
    build_dml(stmt, StmtKind::Delete, table, Vec::new(), write, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_statements;

    fn schema() -> Schema {
        let mut b = Schema::builder();
        b.table(
            "Customer",
            &[("c_id", 4.0), ("c_name", 16.0), ("c_balance", 8.0)],
        )
        .unwrap();
        b.table(
            "Orders",
            &[("o_id", 4.0), ("o_c_id", 4.0), ("o_total", 8.0)],
        )
        .unwrap();
        b.build().unwrap()
    }

    fn parse_one(sql: &str) -> Result<Parsed, IngestError> {
        let sts = split_statements(sql).unwrap();
        parse_statement(&sts[0], &schema(), true)
    }

    fn dml(sql: &str) -> ParsedDml {
        match parse_one(sql).unwrap() {
            Parsed::Dml(d) => d,
            other => panic!("expected DML, got {other:?}"),
        }
    }

    fn names(schema: &Schema, attrs: &[AttrId]) -> Vec<String> {
        attrs.iter().map(|&a| schema.attr(a).name.clone()).collect()
    }

    #[test]
    fn select_collects_list_and_predicates() {
        let d = dml("SELECT c_name, c_balance FROM customer WHERE c_id = 42 ORDER BY c_name;");
        assert_eq!(d.kind, StmtKind::Select);
        assert_eq!(
            names(&schema(), &d.read),
            vec!["c_id", "c_name", "c_balance"]
        );
        assert!(d.write.is_empty());
        assert_eq!(d.rows, 1.0);
    }

    #[test]
    fn select_star_and_aggregates() {
        let d = dml("SELECT * FROM Customer;");
        assert_eq!(d.read.len(), 3);
        let d = dml("SELECT MAX(o_total) FROM orders WHERE o_c_id = ?;");
        assert_eq!(names(&schema(), &d.read), vec!["o_c_id", "o_total"]);
    }

    #[test]
    fn aliases_and_schema_qualifiers() {
        // Select-list output alias is not a column.
        let d = dml("SELECT c_name AS nick FROM customer WHERE c_id = 1;");
        assert_eq!(names(&schema(), &d.read), vec!["c_id", "c_name"]);
        // Bare table alias usable as a qualifier.
        let d = dml("SELECT c.c_name FROM customer c WHERE c.c_id = 1;");
        assert_eq!(names(&schema(), &d.read), vec!["c_id", "c_name"]);
        // AS-form table alias.
        let d = dml("SELECT c.c_name FROM customer AS c WHERE c_id = 1;");
        assert_eq!(names(&schema(), &d.read), vec!["c_id", "c_name"]);
        // Schema-qualified table name.
        let d = dml("SELECT c_name FROM public.customer WHERE c_id = 1;");
        assert_eq!(names(&schema(), &d.read), vec!["c_id", "c_name"]);
        // Aliased UPDATE and DELETE.
        let d = dml("UPDATE customer c SET c.c_balance = c.c_balance + 1 WHERE c.c_id = 2;");
        assert_eq!(names(&schema(), &d.write), vec!["c_balance"]);
        assert_eq!(names(&schema(), &d.read), vec!["c_id", "c_balance"]);
        let d = dml("DELETE FROM orders o WHERE o.o_id = 3;");
        assert_eq!(names(&schema(), &d.write), vec!["o_id"]);
    }

    #[test]
    fn qualified_columns_must_match_the_table() {
        let d = dml("SELECT customer.c_name FROM customer WHERE customer.c_id = 1;");
        assert_eq!(names(&schema(), &d.read), vec!["c_id", "c_name"]);
        assert!(matches!(
            parse_one("SELECT orders.o_id FROM customer;"),
            Err(IngestError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn insert_with_and_without_column_list() {
        let d = dml("INSERT INTO orders (o_id, o_c_id) VALUES (1, 2);");
        assert_eq!(d.kind, StmtKind::Insert);
        assert_eq!(names(&schema(), &d.write), vec!["o_id", "o_c_id"]);
        assert_eq!(d.rows, 1.0);
        let d = dml("INSERT INTO orders VALUES (1, 2, 9.5), (2, 2, 1.0);");
        assert_eq!(d.write.len(), 3);
        assert_eq!(d.rows, 2.0, "two VALUES tuples");
    }

    #[test]
    fn update_splits_read_and_write_sets() {
        let d = dml("UPDATE customer SET c_balance = c_balance + 10 WHERE c_id = 7;");
        assert_eq!(d.kind, StmtKind::Update);
        assert_eq!(names(&schema(), &d.write), vec!["c_balance"]);
        assert_eq!(names(&schema(), &d.read), vec!["c_id", "c_balance"]);
    }

    #[test]
    fn delete_uses_predicate_columns() {
        let d = dml("DELETE FROM orders WHERE o_id = 3;");
        assert_eq!(d.kind, StmtKind::Delete);
        assert_eq!(names(&schema(), &d.write), vec!["o_id"]);
        let d = dml("DELETE FROM orders;");
        assert_eq!(d.write.len(), 3, "unpredicated delete touches all columns");
    }

    #[test]
    fn annotations_set_rows_and_freq() {
        let d = dml("SELECT /*+ rows=10 freq=3 */ c_name FROM customer WHERE c_id = 1;");
        assert_eq!(d.rows, 10.0);
        assert_eq!(d.freq, 3.0);
        assert!(matches!(
            parse_one("SELECT /*+ rows=banana */ c_name FROM customer;"),
            Err(IngestError::Syntax { .. })
        ));
    }

    #[test]
    fn unsupported_constructs_are_skipped_with_reasons() {
        let skip = |sql: &str| match parse_one(sql).unwrap() {
            Parsed::Skip(r) => r,
            other => panic!("expected skip for {sql:?}, got {other:?}"),
        };
        assert_eq!(
            skip("SELECT c_name FROM customer JOIN orders ON c_id = o_c_id;"),
            SkipReason::Join
        );
        assert_eq!(
            skip("SELECT c_name FROM customer, orders;"),
            SkipReason::Join
        );
        assert_eq!(
            skip("SELECT c_name FROM customer WHERE c_id IN (SELECT o_c_id FROM orders);"),
            SkipReason::Subquery
        );
        assert_eq!(
            skip("INSERT INTO orders SELECT * FROM orders;"),
            SkipReason::InsertFromSelect
        );
        assert_eq!(skip("VACUUM;"), SkipReason::NotADmlStatement);
        assert_eq!(skip("SELECT 1 FROM customer;"), SkipReason::NoColumns);
    }

    #[test]
    fn transaction_brackets() {
        assert_eq!(parse_one("BEGIN;").unwrap(), Parsed::Begin);
        assert_eq!(parse_one("START TRANSACTION;").unwrap(), Parsed::Begin);
        assert_eq!(parse_one("COMMIT;").unwrap(), Parsed::Commit);
        assert_eq!(parse_one("ROLLBACK;").unwrap(), Parsed::Rollback);
    }

    #[test]
    fn strict_vs_lenient() {
        let sts = split_statements("SELECT nope FROM customer;").unwrap();
        assert!(matches!(
            parse_statement(&sts[0], &schema(), true),
            Err(IngestError::UnknownColumn { .. })
        ));
        assert_eq!(
            parse_statement(&sts[0], &schema(), false).unwrap(),
            Parsed::Skip(SkipReason::UnknownReference)
        );
        let sts = split_statements("SELECT c_id FROM nowhere;").unwrap();
        assert!(matches!(
            parse_statement(&sts[0], &schema(), true),
            Err(IngestError::UnknownTable { .. })
        ));
    }
}
