//! Single-statement DML parsing: per-table column extraction.
//!
//! The extraction rules mirror how `vpart_instances::tpcc` models TPC-C by
//! hand (selection predicates count as attribute accesses, UPDATEs carry
//! both the referenced and the written sets so the miner can split them):
//!
//! * `SELECT` — one read access per touched table over select-list ∪
//!   `ON`/`WHERE`/`GROUP BY`/`ORDER BY` columns; `*` means every column of
//!   every table in scope, `t.*` every column of `t`.
//! * `INSERT` — write over the listed columns (all columns without a
//!   list); the number of `VALUES` tuples becomes the row count. The
//!   `INSERT ... SELECT` form adds one read access per source table.
//! * `UPDATE` — written set = `SET` targets; referenced set = `SET`
//!   right-hand-side columns ∪ `WHERE` columns.
//! * `DELETE` — write over the `WHERE` columns (whole table without a
//!   predicate). Row removal touches whole rows, but under the paper's
//!   all-attributes write accounting the β-terms already charge every
//!   replicated attribute of the table, so the predicate set is the
//!   faithful α.
//!
//! Multi-table statements — `JOIN ... ON`, comma joins, `IN (SELECT ...)`
//! and other parenthesized subqueries, `INSERT ... SELECT` — are
//! *flattened*: each touched table yields its own access, exactly like the
//! hand-built TPC-C model expresses New-Order's item/stock reads. Column
//! references resolve against every table in scope (inner scope first for
//! subqueries); unqualified names that several in-scope tables could bind
//! are an [`IngestError::AmbiguousColumn`].
//!
//! Per-table row counts come from, in priority order: a `rows=`
//! annotation; an equality binding of the table's full `PRIMARY KEY`
//! (→ 1 row); otherwise the `default_rows` fallback scaled by the `sel=`
//! annotation, recorded for the ingest report. The caller decides (strict
//! vs lenient) whether unknown tables/columns abort ingestion or skip the
//! statement.

use crate::error::IngestError;
use crate::lexer::{RawStatement, Tok, Token};
use crate::report::SkipReason;
use std::collections::{BTreeMap, BTreeSet};
use vpart_model::{AttrId, Schema, TableId};

/// Non-column identifiers that may appear inside expressions and clause
/// tails (checked uppercased; must stay sorted for the binary search).
const KEYWORDS: &[&str] = &[
    "ALL",
    "AND",
    "ANY",
    "AS",
    "ASC",
    "BETWEEN",
    "BY",
    "CASE",
    "CAST",
    "CROSS",
    "CURRENT_DATE",
    "CURRENT_TIME",
    "CURRENT_TIMESTAMP",
    "DESC",
    "DISTINCT",
    "ELSE",
    "END",
    "ESCAPE",
    "EXISTS",
    "FALSE",
    "FOR",
    "FULL",
    "GROUP",
    "HAVING",
    "ILIKE",
    "IN",
    "INNER",
    "INTERVAL",
    "IS",
    "JOIN",
    "LEFT",
    "LIKE",
    "LIMIT",
    "NATURAL",
    "NOT",
    "NULL",
    "OF",
    "OFFSET",
    "ON",
    "OR",
    "ORDER",
    "OUTER",
    "RIGHT",
    "SELECT",
    "SET",
    "SOME",
    "THEN",
    "TRUE",
    "UNION",
    "UPDATE",
    "USING",
    "VALUES",
    "WHEN",
    "WHERE",
];

/// Keywords that terminate an `ON` join condition at depth 0.
const ON_END: &[&str] = &[
    "CROSS", "FOR", "FULL", "GROUP", "HAVING", "INNER", "JOIN", "LEFT", "LIMIT", "NATURAL",
    "OFFSET", "ORDER", "RIGHT", "UNION", "USING", "WHERE",
];

/// Keywords that terminate the `WHERE` predicate region at depth 0.
const WHERE_END: &[&str] = &[
    "FOR", "GROUP", "HAVING", "LIMIT", "OFFSET", "ORDER", "UNION",
];

/// What kind of DML a parsed statement is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StmtKind {
    /// `SELECT` — a read query.
    Select,
    /// `INSERT` — a write query (plus reads for `INSERT ... SELECT`).
    Insert,
    /// `UPDATE` — split into read + write sub-queries by the miner.
    Update,
    /// `DELETE` — a write query.
    Delete,
}

impl StmtKind {
    /// Lowercase verb for query naming.
    pub fn verb(self) -> &'static str {
        match self {
            StmtKind::Select => "select",
            StmtKind::Insert => "insert",
            StmtKind::Update => "update",
            StmtKind::Delete => "delete",
        }
    }
}

/// How a per-table row count was determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowBasis {
    /// Explicit `rows=` annotation.
    Annotated,
    /// Counted from the statement itself (`VALUES` tuple count).
    Exact,
    /// All primary-key columns equality-bound to constants → 1 row.
    PkEquality,
    /// Fallback: `default_rows` × `sel=` — a guess worth reporting.
    Default,
}

/// One table's share of a parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub struct TableAccess {
    /// The accessed table.
    pub table: TableId,
    /// Referenced (read) attributes, sorted and deduplicated.
    pub read: Vec<AttrId>,
    /// Written attributes, sorted and deduplicated.
    pub write: Vec<AttrId>,
    /// Average rows accessed per execution in this table (`n_{a,q}`).
    pub rows: f64,
    /// How `rows` was determined (drives the ingest-report diagnostics).
    pub basis: RowBasis,
}

/// A successfully parsed DML statement, flattened per table.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedDml {
    /// Statement kind.
    pub kind: StmtKind,
    /// Per-table accesses in first-touch order; the write target (if any)
    /// comes first. Never empty.
    pub accesses: Vec<TableAccess>,
    /// Frequency weight of one log occurrence (`freq=` annotation, else 1).
    pub freq: f64,
}

/// Outcome of parsing one raw statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// A DML statement contributing workload.
    Dml(ParsedDml),
    /// `BEGIN` / `START TRANSACTION`.
    Begin,
    /// `COMMIT` / `END`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
    /// Skipped with a reason (always returned in lenient mode; in strict
    /// mode only for reasons that are not schema/log mismatches).
    Skip(SkipReason),
}

/// Schema-side context for statement parsing.
#[derive(Debug, Clone, Copy)]
pub struct StmtCtx<'a> {
    /// The schema statements resolve against.
    pub schema: &'a Schema,
    /// Per-table primary-key attribute sets (empty slice / empty entries
    /// when the DDL declared none).
    pub pks: &'a [Vec<AttrId>],
    /// Strict (error) vs lenient (skip) handling of unknown references.
    pub strict: bool,
    /// Row-count fallback when neither `rows=` nor a PK equality applies.
    pub default_rows: f64,
}

impl<'a> StmtCtx<'a> {
    /// Primary key of `t`, if one was declared.
    fn pk(&self, t: TableId) -> &[AttrId] {
        self.pks.get(t.index()).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Parses one statement against the schema in `ctx`.
pub fn parse_statement(stmt: &RawStatement, ctx: &StmtCtx) -> Result<Parsed, IngestError> {
    let head = match stmt.head() {
        Some(h) => h,
        None => return Ok(Parsed::Skip(SkipReason::NotADmlStatement)),
    };
    let result = match head.as_str() {
        "BEGIN" | "START" => return Ok(Parsed::Begin),
        "COMMIT" | "END" => return Ok(Parsed::Commit),
        "ROLLBACK" => return Ok(Parsed::Rollback),
        "SELECT" => parse_select(stmt, ctx),
        "INSERT" => parse_insert(stmt, ctx),
        "UPDATE" => parse_update(stmt, ctx),
        "DELETE" => parse_delete(stmt, ctx),
        _ => return Ok(Parsed::Skip(SkipReason::NotADmlStatement)),
    };
    match result {
        Ok(parsed) => Ok(parsed),
        // Set operations (UNION, ...) cannot be flattened per table; they
        // are skipped in both modes.
        Err(IngestError::Unflattenable { .. }) => Ok(Parsed::Skip(SkipReason::Subquery)),
        Err(e) if ctx.strict => Err(e),
        Err(
            IngestError::UnknownTable { .. }
            | IngestError::UnknownColumn { .. }
            | IngestError::AmbiguousColumn { .. },
        ) => Ok(Parsed::Skip(SkipReason::UnknownReference)),
        Err(IngestError::Syntax { .. }) => Ok(Parsed::Skip(SkipReason::Unparsable)),
        Err(e) => Err(e),
    }
}

/// The `rows=` / `freq=` / `sel=` annotations of a statement.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StmtStats {
    /// `rows=N`: average rows per execution, applied to every table.
    pub rows: Option<f64>,
    /// `freq=N`: execution weight (`None` when not annotated).
    pub freq: Option<f64>,
    /// `sel=F`: scale factor for estimated (non-annotated, non-PK-bound)
    /// per-table row counts — join selectivity / fan-out.
    pub sel: Option<f64>,
}

/// Reads the statistics annotations of a statement.
pub fn statement_stats(stmt: &RawStatement) -> Result<StmtStats, IngestError> {
    let parse_pos = |key: &str| -> Result<Option<f64>, IngestError> {
        match stmt.annotation(key) {
            None => Ok(None),
            Some(v) => match v.parse::<f64>() {
                Ok(x) if x > 0.0 && x.is_finite() => Ok(Some(x)),
                _ => Err(IngestError::Syntax {
                    line: stmt.line,
                    expected: format!("a positive number in the {key}= annotation"),
                    found: format!("{v:?}"),
                }),
            },
        }
    };
    Ok(StmtStats {
        rows: parse_pos("rows")?,
        freq: parse_pos("freq")?,
        sel: parse_pos("sel")?,
    })
}

// ---------------------------------------------------------------- helpers

fn find_table(schema: &Schema, name: &str, line: u32) -> Result<TableId, IngestError> {
    schema
        .tables()
        .iter()
        .position(|t| t.name.eq_ignore_ascii_case(name))
        .map(TableId::from_index)
        .ok_or_else(|| IngestError::UnknownTable {
            name: name.to_string(),
            line,
        })
}

fn find_attr(
    schema: &Schema,
    table: TableId,
    name: &str,
    line: u32,
) -> Result<AttrId, IngestError> {
    table_attr(schema, table, name).ok_or_else(|| IngestError::UnknownColumn {
        table: schema.tables()[table.index()].name.clone(),
        column: name.to_string(),
        line,
    })
}

/// `table`'s attribute named `name`, if any.
pub(crate) fn table_attr(schema: &Schema, table: TableId, name: &str) -> Option<AttrId> {
    schema
        .table_attrs(table)
        .find(|&a| schema.attrs()[a].name.eq_ignore_ascii_case(name))
        .map(AttrId::from_index)
}

fn all_attrs(schema: &Schema, table: TableId) -> Vec<AttrId> {
    schema.table_attrs(table).map(AttrId::from_index).collect()
}

/// Normalizes a collected attribute set: a whole-row (`*`) reference
/// expands to every column, everything else is sorted and deduplicated.
fn finish_attrs(
    mut attrs: Vec<AttrId>,
    star: bool,
    schema: &Schema,
    table: TableId,
) -> Vec<AttrId> {
    if star {
        return all_attrs(schema, table);
    }
    attrs.sort_unstable();
    attrs.dedup();
    attrs
}

fn is_keyword(word: &str) -> bool {
    KEYWORDS
        .binary_search(&word.to_ascii_uppercase().as_str())
        .is_ok()
}

fn is_kw_of(t: &Token, set: &[&str]) -> bool {
    matches!(&t.tok, Tok::Ident(s) if set.binary_search(&s.to_ascii_uppercase().as_str()).is_ok())
}

/// True for tokens a column can be equality-bound to (constants).
fn is_literal(t: Option<&Token>) -> bool {
    matches!(
        t.map(|t| &t.tok),
        Some(Tok::Number(_) | Tok::Str(_) | Tok::Param)
    )
}

/// Index of the first depth-0 occurrence of keyword `kw` in `toks`.
fn find_kw(toks: &[Token], kw: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth = depth.saturating_sub(1),
            tok if depth == 0 && tok.is_kw(kw) => return Some(i),
            _ => {}
        }
    }
    None
}

fn syntax_at(toks: &[Token], i: usize, fallback_line: u32, expected: &str) -> IngestError {
    let (line, found) = match toks.get(i) {
        Some(t) => (t.line, format!("{:?}", t.tok)),
        None => (fallback_line, "end of statement".to_string()),
    };
    IngestError::Syntax {
        line,
        expected: expected.to_string(),
        found,
    }
}

fn syntax(stmt: &RawStatement, i: usize, expected: &str) -> IngestError {
    syntax_at(&stmt.tokens, i, stmt.line, expected)
}

/// A table bound in a statement plus how the statement refers to it.
#[derive(Debug, Clone)]
struct TableRef {
    table: TableId,
    /// Alias bound in the statement (`FROM customer c` / `... AS c`), if any.
    alias: Option<String>,
    /// Token index just past the table reference (incl. any alias).
    end: usize,
}

impl TableRef {
    /// True if `name` refers to this table (by name or alias).
    fn matches(&self, schema: &Schema, name: &str) -> bool {
        schema.tables()[self.table.index()]
            .name
            .eq_ignore_ascii_case(name)
            || self
                .alias
                .as_deref()
                .is_some_and(|a| a.eq_ignore_ascii_case(name))
    }
}

/// Parses a table reference at `toks[i]`:
/// `[schema_qualifier .] name [[AS] alias]`.
fn parse_table_ref(
    toks: &[Token],
    i: usize,
    schema: &Schema,
    fallback_line: u32,
) -> Result<TableRef, IngestError> {
    let Some(Tok::Ident(first)) = toks.get(i).map(|t| &t.tok) else {
        return Err(syntax_at(toks, i, fallback_line, "a table name"));
    };
    let (name, mut j) = if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('.'))) {
        // `schema.table`: the qualifier is ignored (single-namespace model).
        match toks.get(i + 2).map(|t| &t.tok) {
            Some(Tok::Ident(n)) => (n, i + 3),
            _ => {
                return Err(syntax_at(
                    toks,
                    i + 2,
                    fallback_line,
                    "a table name after the schema qualifier",
                ))
            }
        }
    } else {
        (first, i + 1)
    };
    let table = find_table(schema, name, toks[i].line)?;
    let mut alias = None;
    if toks.get(j).is_some_and(|t| t.tok.is_kw("AS")) {
        match toks.get(j + 1).map(|t| &t.tok) {
            Some(Tok::Ident(a)) => {
                alias = Some(a.clone());
                j += 2;
            }
            _ => return Err(syntax_at(toks, j + 1, fallback_line, "an alias after AS")),
        }
    } else if let Some(Tok::Ident(a)) = toks.get(j).map(|t| &t.tok) {
        // Bare alias — anything that is not a clause keyword.
        if !is_keyword(a) {
            alias = Some(a.clone());
            j += 1;
        }
    }
    Ok(TableRef {
        table,
        alias,
        end: j,
    })
}

// -------------------------------------------------------- access collection

/// Accumulates per-table column references across a whole statement.
#[derive(Debug, Default)]
struct Accesses {
    /// Tables in first-touch order.
    order: Vec<TableId>,
    /// Read attributes per table.
    read: BTreeMap<TableId, Vec<AttrId>>,
    /// Tables with a whole-row (`*`) read.
    star: BTreeSet<TableId>,
    /// Equality-bound (to a constant) columns per table.
    bound: BTreeMap<TableId, Vec<AttrId>>,
}

impl Accesses {
    fn touch(&mut self, t: TableId) {
        if !self.order.contains(&t) {
            self.order.push(t);
        }
    }

    fn add_read(&mut self, t: TableId, a: AttrId) {
        self.touch(t);
        self.read.entry(t).or_default().push(a);
    }

    fn add_star(&mut self, t: TableId) {
        self.touch(t);
        self.star.insert(t);
    }

    fn add_bound(&mut self, t: TableId, a: AttrId) {
        self.bound.entry(t).or_default().push(a);
    }
}

/// Resolves a possibly-qualified column against a scope chain (innermost
/// first). Returns the owning table and attribute.
fn resolve_column(
    schema: &Schema,
    scopes: &[&[TableRef]],
    qualifier: Option<&str>,
    name: &str,
    line: u32,
) -> Result<(TableId, AttrId), IngestError> {
    if let Some(q) = qualifier {
        for level in scopes {
            if let Some(r) = level.iter().find(|r| r.matches(schema, q)) {
                return Ok((r.table, find_attr(schema, r.table, name, line)?));
            }
        }
        return Err(IngestError::UnknownColumn {
            table: q.to_string(),
            column: name.to_string(),
            line,
        });
    }
    for level in scopes {
        let mut hits: Vec<(TableId, AttrId)> = Vec::new();
        for r in level.iter() {
            if hits.iter().any(|&(t, _)| t == r.table) {
                continue;
            }
            if let Some(a) = table_attr(schema, r.table, name) {
                hits.push((r.table, a));
            }
        }
        match hits.len() {
            0 => continue,
            1 => return Ok(hits[0]),
            _ => {
                return Err(IngestError::AmbiguousColumn {
                    column: name.to_string(),
                    tables: hits
                        .iter()
                        .map(|&(t, _)| schema.tables()[t.index()].name.clone())
                        .collect(),
                    line,
                })
            }
        }
    }
    let in_scope = scopes
        .first()
        .map(|level| {
            level
                .iter()
                .map(|r| schema.tables()[r.table.index()].name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        })
        .unwrap_or_default();
    Err(IngestError::UnknownColumn {
        table: in_scope,
        column: name.to_string(),
        line,
    })
}

/// Scans an expression region for column references, adding them as reads.
///
/// Identifiers directly followed by `(` are function names; `qualifier.col`
/// references must name an in-scope table (or its alias); the identifier
/// after an `AS` is an output alias, not a column; a bare `*` marks a
/// whole-row reference on every table of the innermost scope (also matched
/// by multiplication, which makes the extraction an over-approximation —
/// documented in the crate docs). With `binding`, `col = <constant>`
/// patterns record equality bindings for PK row inference; an `OR` (or a
/// predicate-negating `NOT`) anywhere in the region voids the region's
/// bindings — a disjunction or negation no longer pins a unique row.
/// Operator forms of `NOT` (`IS NOT NULL`, `NOT IN`, ...) do not void.
fn scan_region(
    toks: &[Token],
    schema: &Schema,
    scopes: &[&[TableRef]],
    acc: &mut Accesses,
    binding: bool,
) -> Result<(), IngestError> {
    let mut i = 0usize;
    let mut after_as = false;
    let mut bound: Vec<(TableId, AttrId)> = Vec::new();
    let mut or_seen = false;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('*') => {
                if let Some(level) = scopes.first() {
                    for r in level.iter() {
                        acc.add_star(r.table);
                    }
                }
                i += 1;
            }
            Tok::Ident(name) => {
                if after_as {
                    // Output alias (`expr AS name`): not a column.
                    after_as = false;
                    i += 1;
                    continue;
                }
                let next = toks.get(i + 1).map(|t| &t.tok);
                if matches!(next, Some(Tok::Punct('('))) {
                    // Function name; its arguments are scanned as we go.
                    i += 1;
                } else if matches!(next, Some(Tok::Punct('.'))) {
                    let start = i;
                    match toks.get(i + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(col)) => {
                            let (t, a) =
                                resolve_column(schema, scopes, Some(name), col, toks[i].line)?;
                            acc.add_read(t, a);
                            if binding && bound_at(toks, start, i + 3) {
                                bound.push((t, a));
                            }
                        }
                        Some(Tok::Punct('*')) => {
                            let q = name.clone();
                            let r = scopes
                                .iter()
                                .find_map(|level| {
                                    level
                                        .iter()
                                        .find(|r| r.matches(schema, &q))
                                        .map(|r| r.table)
                                })
                                .ok_or_else(|| IngestError::UnknownColumn {
                                    table: q,
                                    column: "*".to_string(),
                                    line: toks[i].line,
                                })?;
                            acc.add_star(r);
                        }
                        _ => {}
                    }
                    i += 3;
                } else if is_keyword(name) {
                    after_as = name.eq_ignore_ascii_case("AS");
                    // OR makes equality bindings non-unique (disjunction);
                    // so does a NOT that negates a predicate (`NOT col =`,
                    // `NOT (...)`) — but the non-negating operator forms
                    // (`IS NOT NULL`, `NOT IN`, `NOT LIKE`, ...) leave
                    // sibling conjuncts' bindings intact.
                    let negates_a_predicate = name.eq_ignore_ascii_case("NOT")
                        && match toks.get(i + 1).map(|t| &t.tok) {
                            Some(Tok::Punct('(')) => true,
                            Some(Tok::Ident(next)) => !matches!(
                                next.to_ascii_uppercase().as_str(),
                                "IN" | "LIKE" | "ILIKE" | "BETWEEN" | "EXISTS" | "NULL" | "SIMILAR"
                            ),
                            _ => false,
                        };
                    or_seen |= name.eq_ignore_ascii_case("OR") || negates_a_predicate;
                    i += 1;
                } else {
                    let (t, a) = resolve_column(schema, scopes, None, name, toks[i].line)?;
                    acc.add_read(t, a);
                    if binding && bound_at(toks, i, i + 1) {
                        bound.push((t, a));
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    if binding && !or_seen {
        for (t, a) in bound {
            acc.add_bound(t, a);
        }
    }
    Ok(())
}

/// True when the column reference spanning `toks[start..end)` is equality-
/// compared to a constant (`col = 7`, `? = t.col`, ...).
///
/// Both the column and the constant must be standalone operands: an
/// adjacent arithmetic operator (`bal + id = 7`, `id = 7 + bal`) means the
/// equality constrains an expression, not the column, and cannot pin a
/// key lookup to one row.
fn bound_at(toks: &[Token], start: usize, end: usize) -> bool {
    let eq = |t: Option<&Token>| matches!(t.map(|t| &t.tok), Some(Tok::Punct('=')));
    let op = |t: Option<&Token>| {
        matches!(
            t.map(|t| &t.tok),
            Some(Tok::Punct(
                '+' | '-' | '*' | '/' | '%' | '|' | '&' | '^' | '<' | '>' | '!'
            ))
        )
    };
    let before = |i: usize| i.checked_sub(1).and_then(|j| toks.get(j));
    // `col = <constant>`
    if eq(toks.get(end))
        && is_literal(toks.get(end + 1))
        && !op(before(start))
        && !op(toks.get(end + 2))
    {
        return true;
    }
    // `<constant> = col`
    start >= 2
        && eq(toks.get(start - 1))
        && is_literal(toks.get(start - 2))
        && !op(before(start - 2))
        && !op(toks.get(end))
}

/// Finds every top-level parenthesized subquery `( SELECT ... )` in `toks`
/// and returns the inclusive `(`..`)` index ranges.
fn subquery_ranges(toks: &[Token], fallback_line: u32) -> Result<Vec<(usize, usize)>, IngestError> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if matches!(toks[i].tok, Tok::Punct('('))
            && toks.get(i + 1).is_some_and(|t| t.tok.is_kw("SELECT"))
        {
            let mut depth = 0usize;
            let mut close = None;
            for (j, t) in toks.iter().enumerate().skip(i) {
                match t.tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(j);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let Some(close) = close else {
                return Err(syntax_at(
                    toks,
                    toks.len(),
                    fallback_line,
                    "a `)` closing the subquery",
                ));
            };
            ranges.push((i, close));
            i = close + 1;
        } else {
            i += 1;
        }
    }
    Ok(ranges)
}

/// `toks` minus the given inclusive index ranges.
fn strip_ranges(toks: &[Token], ranges: &[(usize, usize)]) -> Vec<Token> {
    toks.iter()
        .enumerate()
        .filter(|(i, _)| !ranges.iter().any(|&(s, e)| *i >= s && *i <= e))
        .map(|(_, t)| t.clone())
        .collect()
}

/// Parses the `FROM` table list starting at `toks[i]`: comma joins and the
/// `JOIN ... ON expr` / `USING (cols)` family. Returns the bound refs, the
/// `ON` predicate regions (index ranges into `toks`), the `USING` column
/// name tokens, and the index where the clause tail (`WHERE ...`) starts.
#[allow(clippy::type_complexity)]
fn parse_table_list(
    toks: &[Token],
    mut i: usize,
    schema: &Schema,
    fallback_line: u32,
) -> Result<(Vec<TableRef>, Vec<(usize, usize)>, Vec<usize>, usize), IngestError> {
    let mut refs = Vec::new();
    let mut on_regions = Vec::new();
    let mut using_cols = Vec::new();
    'tables: loop {
        let r = parse_table_ref(toks, i, schema, fallback_line)?;
        i = r.end;
        refs.push(r);
        loop {
            match toks.get(i) {
                Some(t) if matches!(t.tok, Tok::Punct(',')) => {
                    i += 1;
                    continue 'tables;
                }
                Some(t) if t.tok.is_kw("JOIN") => {
                    i += 1;
                    continue 'tables;
                }
                Some(t)
                    if is_kw_of(
                        t,
                        &[
                            "CROSS", "FULL", "INNER", "LEFT", "NATURAL", "OUTER", "RIGHT",
                        ],
                    ) =>
                {
                    i += 1; // join-type noise before JOIN
                }
                Some(t) if t.tok.is_kw("ON") => {
                    let start = i + 1;
                    let mut j = start;
                    let mut depth = 0usize;
                    while let Some(t) = toks.get(j) {
                        match &t.tok {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => depth = depth.saturating_sub(1),
                            Tok::Punct(',') if depth == 0 => break,
                            _ if depth == 0 && is_kw_of(t, ON_END) => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    on_regions.push((start, j));
                    i = j;
                }
                Some(t) if t.tok.is_kw("USING") => {
                    if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                        return Err(syntax_at(toks, i + 1, fallback_line, "`(` after USING"));
                    }
                    let mut j = i + 2;
                    let mut closed = false;
                    while let Some(t) = toks.get(j) {
                        match &t.tok {
                            Tok::Punct(')') => {
                                closed = true;
                                break;
                            }
                            Tok::Ident(_) => using_cols.push(j),
                            _ => {}
                        }
                        j += 1;
                    }
                    if !closed {
                        return Err(syntax_at(
                            toks,
                            toks.len(),
                            fallback_line,
                            "a `)` closing the USING column list",
                        ));
                    }
                    i = j + 1;
                }
                _ => break 'tables,
            }
        }
    }
    Ok((refs, on_regions, using_cols, i))
}

/// Parses a `SELECT` token region (head `SELECT` at `toks[0]`) into `acc`,
/// recursing into parenthesized subqueries. `outer` is the enclosing scope
/// chain for correlated references.
fn parse_select_scope(
    toks: &[Token],
    outer: &[&[TableRef]],
    ctx: &StmtCtx,
    acc: &mut Accesses,
    fallback_line: u32,
) -> Result<(), IngestError> {
    let ranges = subquery_ranges(&toks[1..], fallback_line)?
        .into_iter()
        .map(|(s, e)| (s + 1, e + 1))
        .collect::<Vec<_>>();
    // Derived tables (`FROM (SELECT ...) alias`) have no flattenable
    // per-table shape — after stripping, only the alias would remain and
    // misparse as an unknown table.
    if let Some(from) = find_kw(toks, "FROM") {
        for &(s, _) in &ranges {
            let derived = match toks.get(s.wrapping_sub(1)).map(|t| &t.tok) {
                Some(t) if t.is_kw("FROM") || t.is_kw("JOIN") => true,
                // A comma continues the table list only while still inside
                // the FROM clause; after a depth-0 WHERE/GROUP BY/ORDER BY
                // it separates expressions (e.g. scalar subqueries), not
                // tables. Depth-0 only: clause keywords inside predicate
                // subqueries or function calls do not end the FROM list.
                Some(Tok::Punct(',')) => {
                    let mut in_from_list = s > from;
                    let mut depth = 0usize;
                    for t in &toks[from..s.max(from)] {
                        match &t.tok {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => depth = depth.saturating_sub(1),
                            _ if depth == 0
                                && is_kw_of(
                                    t,
                                    &[
                                        "FOR", "GROUP", "HAVING", "LIMIT", "OFFSET", "ORDER",
                                        "UNION", "WHERE",
                                    ],
                                ) =>
                            {
                                in_from_list = false;
                                break;
                            }
                            _ => {}
                        }
                    }
                    in_from_list
                }
                _ => false,
            };
            if derived {
                return Err(IngestError::Unflattenable {
                    line: fallback_line,
                });
            }
        }
    }
    let outer_toks = strip_ranges(toks, &ranges);
    if outer_toks.iter().skip(1).any(|t| t.tok.is_kw("SELECT")) {
        // A non-parenthesized second SELECT (UNION etc.) — unsupported.
        return Err(IngestError::Unflattenable {
            line: fallback_line,
        });
    }

    // Subqueries without FROM (`SELECT 1`, correlated scalars) are legal;
    // top-level SELECTs without FROM are caught by the caller.
    let (refs, on_regions, using_cols, select_end, tail_start) = match find_kw(&outer_toks, "FROM")
    {
        Some(from) => {
            let (refs, on, using, tail) =
                parse_table_list(&outer_toks, from + 1, ctx.schema, fallback_line)?;
            (refs, on, using, from, tail)
        }
        None => {
            let one = outer_toks.len().min(1);
            (Vec::new(), Vec::new(), Vec::new(), one, one)
        }
    };
    let chain: Vec<&[TableRef]> = std::iter::once(refs.as_slice())
        .chain(outer.iter().copied())
        .collect();
    // Select list.
    scan_region(&outer_toks[1..select_end], ctx.schema, &chain, acc, false)?;
    for &(s, e) in &on_regions {
        scan_region(&outer_toks[s..e], ctx.schema, &chain, acc, true)?;
    }
    for &j in &using_cols {
        // USING columns exist in (at least) both joined tables; add the
        // read to every in-scope table that has the column.
        let Tok::Ident(name) = &outer_toks[j].tok else {
            continue;
        };
        let mut any = false;
        for r in &refs {
            if let Some(a) = table_attr(ctx.schema, r.table, name) {
                acc.add_read(r.table, a);
                any = true;
            }
        }
        if !any {
            return Err(IngestError::UnknownColumn {
                table: refs
                    .iter()
                    .map(|r| ctx.schema.tables()[r.table.index()].name.clone())
                    .collect::<Vec<_>>()
                    .join(", "),
                column: name.clone(),
                line: outer_toks[j].line,
            });
        }
    }
    scan_tail(&outer_toks, tail_start, ctx.schema, &chain, acc)?;
    // A self-join references the same table through two aliases: an
    // equality binding through one alias does not pin the rows scanned
    // through the other, so its bindings cannot prove rows = 1.
    let mut seen_tables: Vec<TableId> = Vec::new();
    for r in &refs {
        if seen_tables.contains(&r.table) {
            acc.bound.remove(&r.table);
        } else {
            seen_tables.push(r.table);
        }
    }

    // Recurse into the subqueries with this scope prepended. Each runs
    // against its own accumulator so `merge` can tell which equality
    // bindings belong to which scope.
    for (s, e) in ranges {
        let mut sub = Accesses::default();
        parse_select_scope(&toks[s + 1..e], &chain, ctx, &mut sub, fallback_line)?;
        merge(acc, sub);
    }
    Ok(())
}

/// Scans a clause tail: the `WHERE` region binds (for PK inference), the
/// rest (`GROUP BY` / `ORDER BY` / ...) only reads.
fn scan_tail(
    toks: &[Token],
    tail_start: usize,
    schema: &Schema,
    scopes: &[&[TableRef]],
    acc: &mut Accesses,
) -> Result<(), IngestError> {
    let tail = &toks[tail_start..];
    match find_kw(tail, "WHERE") {
        Some(w) => {
            let rest = &tail[w + 1..];
            // Depth-0 only: a FOR/ORDER/... inside a function call does
            // not end the predicate region.
            let mut end = rest.len();
            let mut depth = 0usize;
            for (j, t) in rest.iter().enumerate() {
                match &t.tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => depth = depth.saturating_sub(1),
                    _ if depth == 0 && is_kw_of(t, WHERE_END) => {
                        end = j;
                        break;
                    }
                    _ => {}
                }
            }
            scan_region(&tail[..w], schema, scopes, acc, false)?;
            scan_region(&rest[..end], schema, scopes, acc, true)?;
            scan_region(&rest[end..], schema, scopes, acc, false)
        }
        None => scan_region(tail, schema, scopes, acc, false),
    }
}

// ------------------------------------------------------------- row counts

/// Determines the row count for one table's access.
fn rows_for(table: TableId, acc: &Accesses, stats: &StmtStats, ctx: &StmtCtx) -> (f64, RowBasis) {
    if let Some(r) = stats.rows {
        return (r, RowBasis::Annotated);
    }
    let pk = ctx.pk(table);
    if !pk.is_empty() {
        let bound = acc.bound.get(&table).map(Vec::as_slice).unwrap_or(&[]);
        if pk.iter().all(|a| bound.contains(a)) {
            return (1.0, RowBasis::PkEquality);
        }
    }
    (
        ctx.default_rows * stats.sel.unwrap_or(1.0),
        RowBasis::Default,
    )
}

/// The write side of an `INSERT`/`UPDATE`/`DELETE` statement.
struct WriteTarget {
    table: TableId,
    write: Vec<AttrId>,
    /// Row count already known from the statement shape (`VALUES` tuple
    /// count); `None` → estimate from predicates.
    rows: Option<(f64, RowBasis)>,
}

/// Assembles the final access list: `write_target` (if any) first, then the
/// collected read tables in first-touch order. Tables with no referenced
/// attributes are dropped; an empty result is a [`SkipReason::NoColumns`].
fn build_dml(
    stmt: &RawStatement,
    kind: StmtKind,
    write_target: Option<WriteTarget>,
    acc: Accesses,
    ctx: &StmtCtx,
) -> Result<Parsed, IngestError> {
    let stats = statement_stats(stmt)?;
    let mut accesses: Vec<TableAccess> = Vec::new();
    let finish = |attrs: Vec<AttrId>, star: bool, table: TableId| {
        finish_attrs(attrs, star, ctx.schema, table)
    };
    if let Some(WriteTarget {
        table,
        write,
        rows: rows_override,
    }) = write_target
    {
        let read = finish(
            acc.read.get(&table).cloned().unwrap_or_default(),
            acc.star.contains(&table),
            table,
        );
        let (rows, basis) = match rows_override {
            Some((r, b)) => match stats.rows {
                Some(explicit) => (explicit, RowBasis::Annotated),
                None => (r, b),
            },
            None => rows_for(table, &acc, &stats, ctx),
        };
        if !read.is_empty() || !write.is_empty() {
            accesses.push(TableAccess {
                table,
                read,
                write,
                rows,
                basis,
            });
        }
    }
    for &t in &acc.order {
        if accesses.iter().any(|a| a.table == t) {
            continue; // merged into the write target above
        }
        let read = finish(
            acc.read.get(&t).cloned().unwrap_or_default(),
            acc.star.contains(&t),
            t,
        );
        if read.is_empty() {
            continue;
        }
        let (rows, basis) = rows_for(t, &acc, &stats, ctx);
        accesses.push(TableAccess {
            table: t,
            read,
            write: Vec::new(),
            rows,
            basis,
        });
    }
    if accesses.is_empty() {
        return Ok(Parsed::Skip(SkipReason::NoColumns));
    }
    Ok(Parsed::Dml(ParsedDml {
        kind,
        accesses,
        freq: stats.freq.unwrap_or(1.0),
    }))
}

// ----------------------------------------------------------- per-statement

fn parse_select(stmt: &RawStatement, ctx: &StmtCtx) -> Result<Parsed, IngestError> {
    let toks = &stmt.tokens;
    if find_kw(toks, "FROM").is_none() && subquery_ranges(toks, stmt.line)?.is_empty() {
        return Err(syntax(stmt, toks.len(), "FROM"));
    }
    let mut acc = Accesses::default();
    parse_select_scope(toks, &[], ctx, &mut acc, stmt.line)?;
    build_dml(stmt, StmtKind::Select, None, acc, ctx)
}

fn parse_insert(stmt: &RawStatement, ctx: &StmtCtx) -> Result<Parsed, IngestError> {
    let toks = &stmt.tokens;
    if !toks.get(1).is_some_and(|t| t.tok.is_kw("INTO")) {
        return Err(syntax(stmt, 1, "INTO"));
    }
    let tref = parse_table_ref(toks, 2, ctx.schema, stmt.line)?;
    let table = tref.table;

    // Optional column list.
    let mut i = tref.end;
    let mut write = Vec::new();
    let mut star = true; // no list → whole row
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('('))) {
        star = false;
        i += 1;
        while let Some(t) = toks.get(i) {
            match &t.tok {
                Tok::Punct(')') => {
                    i += 1;
                    break;
                }
                Tok::Punct(',') => i += 1,
                Tok::Ident(col) => {
                    write.push(find_attr(ctx.schema, table, col, t.line)?);
                    i += 1;
                }
                _ => return Err(syntax(stmt, i, "a column name in the insert list")),
            }
        }
    }
    let write = finish_attrs(write, star, ctx.schema, table);

    let mut acc = Accesses::default();
    let rows_override;
    if toks.get(i).is_some_and(|t| t.tok.is_kw("VALUES")) {
        // Row count = number of depth-1 value tuples.
        let mut tuples = 0usize;
        let mut depth = 0usize;
        for t in &toks[i + 1..] {
            match t.tok {
                Tok::Punct('(') => {
                    depth += 1;
                    if depth == 1 {
                        tuples += 1;
                    }
                }
                Tok::Punct(')') => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if tuples == 0 {
            return Err(syntax(
                stmt,
                toks.len(),
                "a (value, ...) tuple after VALUES",
            ));
        }
        // Scalar subqueries inside the VALUES tuples still contribute
        // reads on their source tables.
        for (s, e) in subquery_ranges(&toks[i + 1..], stmt.line)? {
            let mut sub = Accesses::default();
            parse_select_scope(
                &toks[i + 1 + s + 1..i + 1 + e],
                &[],
                ctx,
                &mut sub,
                stmt.line,
            )?;
            merge(&mut acc, sub);
        }
        rows_override = Some((tuples as f64, RowBasis::Exact));
    } else if toks.get(i).is_some_and(|t| t.tok.is_kw("SELECT")) {
        // `INSERT ... SELECT`: flatten the source select into read accesses.
        parse_select_scope(&toks[i..], &[], ctx, &mut acc, stmt.line)?;
        // The inserted row count is the select's cardinality — unknown
        // without annotations, so the default/sel estimate applies.
        rows_override = None;
    } else {
        return Err(syntax(stmt, i, "VALUES or SELECT"));
    }
    build_dml(
        stmt,
        StmtKind::Insert,
        Some(WriteTarget {
            table,
            write,
            rows: rows_override,
        }),
        acc,
        ctx,
    )
}

fn parse_update(stmt: &RawStatement, ctx: &StmtCtx) -> Result<Parsed, IngestError> {
    let toks = &stmt.tokens;
    let ranges = subquery_ranges(toks, stmt.line)?;
    let outer = strip_ranges(toks, &ranges);
    if outer.iter().skip(1).any(|t| t.tok.is_kw("SELECT")) {
        return Ok(Parsed::Skip(SkipReason::Subquery));
    }
    let tref = parse_table_ref(&outer, 1, ctx.schema, stmt.line)?;
    let table = tref.table;
    if matches!(outer.get(tref.end).map(|t| &t.tok), Some(Tok::Punct(','))) {
        // Multi-table UPDATE targets stay unsupported.
        return Ok(Parsed::Skip(SkipReason::Join));
    }
    if !outer.get(tref.end).is_some_and(|t| t.tok.is_kw("SET")) {
        return Err(syntax_at(&outer, tref.end, stmt.line, "SET"));
    }
    let refs = vec![tref];
    let scopes: [&[TableRef]; 1] = [&refs];
    let where_idx = find_kw(&outer, "WHERE").unwrap_or(outer.len());
    let assignments = &outer[refs[0].end + 1..where_idx];

    let mut write = Vec::new();
    let mut acc = Accesses::default();
    // Register the write target up front: if a subquery references the
    // same table, merge() must void its equality bindings (they constrain
    // the subquery's scan, not the rows this statement writes).
    acc.touch(table);
    // Split assignments on depth-0 commas: `col = expr`.
    let mut start = 0usize;
    let mut depth = 0usize;
    let mut boundaries = Vec::new();
    for (j, t) in assignments.iter().enumerate() {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth = depth.saturating_sub(1),
            Tok::Punct(',') if depth == 0 => boundaries.push(j),
            _ => {}
        }
    }
    boundaries.push(assignments.len());
    for &end in &boundaries {
        let item = &assignments[start..end];
        start = end + 1;
        if item.is_empty() {
            continue;
        }
        // Target: `col` or `table.col` before `=`.
        let Some(eq) = item.iter().position(|t| matches!(t.tok, Tok::Punct('='))) else {
            return Err(syntax(stmt, 3, "`=` in a SET assignment"));
        };
        let target = &item[..eq];
        let Some(col_tok) = target.last() else {
            return Err(syntax(stmt, 3, "a column name before `=`"));
        };
        let Tok::Ident(col) = &col_tok.tok else {
            return Err(syntax(stmt, 3, "a column name before `=`"));
        };
        write.push(find_attr(ctx.schema, table, col, col_tok.line)?);
        scan_region(&item[eq + 1..], ctx.schema, &scopes, &mut acc, false)?;
    }
    if write.is_empty() {
        return Ok(Parsed::Skip(SkipReason::NoColumns));
    }
    let write = finish_attrs(write, false, ctx.schema, table);
    if where_idx < outer.len() {
        scan_tail(&outer, where_idx, ctx.schema, &scopes, &mut acc)?;
    }
    for (s, e) in ranges {
        let mut sub = Accesses::default();
        parse_select_scope(&toks[s + 1..e], &scopes, ctx, &mut sub, stmt.line)?;
        merge(&mut acc, sub);
    }
    build_dml(
        stmt,
        StmtKind::Update,
        Some(WriteTarget {
            table,
            write,
            rows: None,
        }),
        acc,
        ctx,
    )
}

fn parse_delete(stmt: &RawStatement, ctx: &StmtCtx) -> Result<Parsed, IngestError> {
    let toks = &stmt.tokens;
    let ranges = subquery_ranges(toks, stmt.line)?;
    let outer = strip_ranges(toks, &ranges);
    if outer.iter().skip(1).any(|t| t.tok.is_kw("SELECT")) {
        return Ok(Parsed::Skip(SkipReason::Subquery));
    }
    if !outer.get(1).is_some_and(|t| t.tok.is_kw("FROM")) {
        return Err(syntax(stmt, 1, "FROM"));
    }
    let tref = parse_table_ref(&outer, 2, ctx.schema, stmt.line)?;
    let table = tref.table;
    let refs = vec![tref];
    let scopes: [&[TableRef]; 1] = [&refs];
    let mut acc = Accesses::default();
    // Register the write target up front so merge() voids same-table
    // subquery bindings (see parse_update).
    acc.touch(table);
    match find_kw(&outer, "WHERE") {
        Some(w) => scan_tail(&outer, w, ctx.schema, &scopes, &mut acc)?,
        None => acc.add_star(table), // full-table delete touches every column
    }
    for (s, e) in ranges {
        let mut sub = Accesses::default();
        parse_select_scope(&toks[s + 1..e], &scopes, ctx, &mut sub, stmt.line)?;
        merge(&mut acc, sub);
    }
    // The predicate columns are the write set (see module docs); other
    // tables referenced by subqueries stay reads.
    let write = {
        let attrs = acc.read.remove(&table).unwrap_or_default();
        let star = acc.star.remove(&table);
        let w = finish_attrs(attrs, star, ctx.schema, table);
        if w.is_empty() {
            all_attrs(ctx.schema, table)
        } else {
            w
        }
    };
    build_dml(
        stmt,
        StmtKind::Delete,
        Some(WriteTarget {
            table,
            write,
            rows: None,
        }),
        acc,
        ctx,
    )
}

/// Merges a subquery's accesses into the enclosing statement's.
///
/// Reads always merge. Equality bindings only survive for tables touched
/// by exactly one of the two scopes: a table referenced in both is
/// scanned through both usages, and a PK equality constraining one usage
/// says nothing about the rows the other touches — so neither side's
/// bindings may pin the shared access to one row.
fn merge(acc: &mut Accesses, sub: Accesses) {
    let shared: Vec<TableId> = sub
        .order
        .iter()
        .copied()
        .filter(|t| acc.order.contains(t))
        .collect();
    for t in &shared {
        acc.bound.remove(t);
    }
    for t in sub.order {
        acc.touch(t);
    }
    for (t, attrs) in sub.read {
        acc.read.entry(t).or_default().extend(attrs);
    }
    acc.star.extend(sub.star);
    for (t, attrs) in sub.bound {
        if !shared.contains(&t) {
            acc.bound.entry(t).or_default().extend(attrs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_statements;

    fn schema() -> Schema {
        let mut b = Schema::builder();
        b.table(
            "Customer",
            &[("c_id", 4.0), ("c_name", 16.0), ("c_balance", 8.0)],
        )
        .unwrap();
        b.table(
            "Orders",
            &[("o_id", 4.0), ("o_c_id", 4.0), ("o_total", 8.0)],
        )
        .unwrap();
        b.build().unwrap()
    }

    /// Customer PK = c_id, Orders PK = o_id.
    fn pks() -> Vec<Vec<AttrId>> {
        vec![vec![AttrId(0)], vec![AttrId(3)]]
    }

    fn parse_with(sql: &str, strict: bool) -> Result<Parsed, IngestError> {
        let sts = split_statements(sql).unwrap();
        let s = schema();
        let p = pks();
        let ctx = StmtCtx {
            schema: &s,
            pks: &p,
            strict,
            default_rows: 1.0,
        };
        parse_statement(&sts[0], &ctx)
    }

    fn parse_one(sql: &str) -> Result<Parsed, IngestError> {
        parse_with(sql, true)
    }

    fn dml(sql: &str) -> ParsedDml {
        match parse_one(sql).unwrap() {
            Parsed::Dml(d) => d,
            other => panic!("expected DML, got {other:?}"),
        }
    }

    /// The single access of a single-table statement.
    fn one(sql: &str) -> TableAccess {
        let d = dml(sql);
        assert_eq!(d.accesses.len(), 1, "expected one access for {sql:?}");
        d.accesses.into_iter().next().unwrap()
    }

    fn names(schema: &Schema, attrs: &[AttrId]) -> Vec<String> {
        attrs.iter().map(|&a| schema.attr(a).name.clone()).collect()
    }

    #[test]
    fn select_collects_list_and_predicates() {
        let d = dml("SELECT c_name, c_balance FROM customer WHERE c_id = 42 ORDER BY c_name;");
        assert_eq!(d.kind, StmtKind::Select);
        let a = &d.accesses[0];
        assert_eq!(
            names(&schema(), &a.read),
            vec!["c_id", "c_name", "c_balance"]
        );
        assert!(a.write.is_empty());
        assert_eq!(a.rows, 1.0);
    }

    #[test]
    fn select_star_and_aggregates() {
        let a = one("SELECT * FROM Customer;");
        assert_eq!(a.read.len(), 3);
        let a = one("SELECT MAX(o_total) FROM orders WHERE o_c_id = ?;");
        assert_eq!(names(&schema(), &a.read), vec!["o_c_id", "o_total"]);
    }

    #[test]
    fn aliases_and_schema_qualifiers() {
        // Select-list output alias is not a column.
        let a = one("SELECT c_name AS nick FROM customer WHERE c_id = 1;");
        assert_eq!(names(&schema(), &a.read), vec!["c_id", "c_name"]);
        // Bare table alias usable as a qualifier.
        let a = one("SELECT c.c_name FROM customer c WHERE c.c_id = 1;");
        assert_eq!(names(&schema(), &a.read), vec!["c_id", "c_name"]);
        // AS-form table alias.
        let a = one("SELECT c.c_name FROM customer AS c WHERE c_id = 1;");
        assert_eq!(names(&schema(), &a.read), vec!["c_id", "c_name"]);
        // Schema-qualified table name.
        let a = one("SELECT c_name FROM public.customer WHERE c_id = 1;");
        assert_eq!(names(&schema(), &a.read), vec!["c_id", "c_name"]);
        // Aliased UPDATE and DELETE.
        let a = one("UPDATE customer c SET c.c_balance = c.c_balance + 1 WHERE c.c_id = 2;");
        assert_eq!(names(&schema(), &a.write), vec!["c_balance"]);
        assert_eq!(names(&schema(), &a.read), vec!["c_id", "c_balance"]);
        let a = one("DELETE FROM orders o WHERE o.o_id = 3;");
        assert_eq!(names(&schema(), &a.write), vec!["o_id"]);
    }

    #[test]
    fn qualified_columns_must_match_a_table_in_scope() {
        let a = one("SELECT customer.c_name FROM customer WHERE customer.c_id = 1;");
        assert_eq!(names(&schema(), &a.read), vec!["c_id", "c_name"]);
        assert!(matches!(
            parse_one("SELECT orders.o_id FROM customer;"),
            Err(IngestError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn insert_with_and_without_column_list() {
        let d = dml("INSERT INTO orders (o_id, o_c_id) VALUES (1, 2);");
        assert_eq!(d.kind, StmtKind::Insert);
        let a = &d.accesses[0];
        assert_eq!(names(&schema(), &a.write), vec!["o_id", "o_c_id"]);
        assert_eq!(a.rows, 1.0);
        assert_eq!(a.basis, RowBasis::Exact);
        let a = one("INSERT INTO orders VALUES (1, 2, 9.5), (2, 2, 1.0);");
        assert_eq!(a.write.len(), 3);
        assert_eq!(a.rows, 2.0, "two VALUES tuples");
    }

    #[test]
    fn update_splits_read_and_write_sets() {
        let d = dml("UPDATE customer SET c_balance = c_balance + 10 WHERE c_id = 7;");
        assert_eq!(d.kind, StmtKind::Update);
        let a = &d.accesses[0];
        assert_eq!(names(&schema(), &a.write), vec!["c_balance"]);
        assert_eq!(names(&schema(), &a.read), vec!["c_id", "c_balance"]);
    }

    #[test]
    fn delete_uses_predicate_columns() {
        let d = dml("DELETE FROM orders WHERE o_id = 3;");
        assert_eq!(d.kind, StmtKind::Delete);
        assert_eq!(names(&schema(), &d.accesses[0].write), vec!["o_id"]);
        let a = one("DELETE FROM orders;");
        assert_eq!(a.write.len(), 3, "unpredicated delete touches all columns");
    }

    #[test]
    fn annotations_set_rows_and_freq() {
        let d = dml("SELECT /*+ rows=10 freq=3 */ c_name FROM customer WHERE c_id = 1;");
        assert_eq!(d.accesses[0].rows, 10.0);
        assert_eq!(d.accesses[0].basis, RowBasis::Annotated);
        assert_eq!(d.freq, 3.0);
        assert!(matches!(
            parse_one("SELECT /*+ rows=banana */ c_name FROM customer;"),
            Err(IngestError::Syntax { .. })
        ));
        assert!(matches!(
            parse_one("SELECT /*+ sel=0 */ c_name FROM customer;"),
            Err(IngestError::Syntax { .. })
        ));
    }

    // ------------------------------------------------ multi-table flattening

    #[test]
    fn join_flattens_into_per_table_reads() {
        let s = schema();
        let d = dml(
            "SELECT c_name, o_total FROM customer JOIN orders ON c_id = o_c_id WHERE o_id = 7;",
        );
        assert_eq!(d.kind, StmtKind::Select);
        assert_eq!(d.accesses.len(), 2);
        let cust = &d.accesses[0];
        assert_eq!(names(&s, &cust.read), vec!["c_id", "c_name"]);
        let ord = &d.accesses[1];
        assert_eq!(names(&s, &ord.read), vec!["o_id", "o_c_id", "o_total"]);
        // o_id is the Orders PK and equality-bound → 1 row; customer is
        // join-bound only → default estimate.
        assert_eq!(ord.rows, 1.0);
        assert_eq!(ord.basis, RowBasis::PkEquality);
        assert_eq!(cust.basis, RowBasis::Default);
    }

    #[test]
    fn comma_join_and_aliases() {
        let s = schema();
        let d = dml("SELECT c.c_name, o.o_total FROM customer c, orders o \
             WHERE c.c_id = o.o_c_id AND o.o_id = 1;");
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(names(&s, &d.accesses[0].read), vec!["c_id", "c_name"]);
        assert_eq!(
            names(&s, &d.accesses[1].read),
            vec!["o_id", "o_c_id", "o_total"]
        );
    }

    #[test]
    fn join_star_touches_every_table_in_scope() {
        let d = dml("SELECT * FROM customer JOIN orders ON c_id = o_c_id;");
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(d.accesses[0].read.len(), 3);
        assert_eq!(d.accesses[1].read.len(), 3);
    }

    #[test]
    fn join_using_reads_the_column_in_both_tables() {
        let mut b = Schema::builder();
        b.table("a", &[("id", 4.0), ("x", 4.0)]).unwrap();
        b.table("b", &[("id", 4.0), ("y", 4.0)]).unwrap();
        let s = b.build().unwrap();
        let sts = split_statements("SELECT x, y FROM a JOIN b USING (id);").unwrap();
        let ctx = StmtCtx {
            schema: &s,
            pks: &[],
            strict: true,
            default_rows: 1.0,
        };
        let Parsed::Dml(d) = parse_statement(&sts[0], &ctx).unwrap() else {
            panic!("expected DML");
        };
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(names(&s, &d.accesses[0].read), vec!["id", "x"]);
        assert_eq!(names(&s, &d.accesses[1].read), vec!["id", "y"]);
    }

    #[test]
    fn in_subquery_flattens() {
        let s = schema();
        let d = dml("SELECT c_name FROM customer WHERE c_id IN \
             (SELECT o_c_id FROM orders WHERE o_total > 100);");
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(names(&s, &d.accesses[0].read), vec!["c_id", "c_name"]);
        assert_eq!(names(&s, &d.accesses[1].read), vec!["o_c_id", "o_total"]);
    }

    #[test]
    fn correlated_subquery_resolves_against_the_outer_scope() {
        let s = schema();
        let d = dml("SELECT c_name FROM customer WHERE EXISTS \
             (SELECT o_id FROM orders WHERE o_c_id = customer.c_id);");
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(names(&s, &d.accesses[0].read), vec!["c_id", "c_name"]);
        assert_eq!(names(&s, &d.accesses[1].read), vec!["o_id", "o_c_id"]);
    }

    #[test]
    fn insert_from_select_writes_target_reads_sources() {
        let s = schema();
        let d = dml("INSERT INTO orders (o_id, o_c_id) \
             SELECT c_id, c_id FROM customer WHERE c_balance > 0;");
        assert_eq!(d.kind, StmtKind::Insert);
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(names(&s, &d.accesses[0].write), vec!["o_id", "o_c_id"]);
        assert!(d.accesses[0].read.is_empty());
        assert_eq!(names(&s, &d.accesses[1].read), vec!["c_id", "c_balance"]);
        assert!(d.accesses[1].write.is_empty());
    }

    #[test]
    fn update_with_subquery_predicate() {
        let s = schema();
        let d = dml("UPDATE customer SET c_balance = 0 WHERE c_id IN \
             (SELECT o_c_id FROM orders WHERE o_total > 500);");
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(names(&s, &d.accesses[0].write), vec!["c_balance"]);
        assert_eq!(names(&s, &d.accesses[0].read), vec!["c_id"]);
        assert_eq!(names(&s, &d.accesses[1].read), vec!["o_c_id", "o_total"]);
    }

    #[test]
    fn delete_with_subquery_predicate() {
        let s = schema();
        let d = dml(
            "DELETE FROM orders WHERE o_c_id IN (SELECT c_id FROM customer WHERE c_balance < 0);",
        );
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(names(&s, &d.accesses[0].write), vec!["o_c_id"]);
        assert_eq!(names(&s, &d.accesses[1].read), vec!["c_id", "c_balance"]);
    }

    #[test]
    fn ambiguous_unqualified_columns_are_rejected() {
        let mut b = Schema::builder();
        b.table("a", &[("id", 4.0), ("x", 4.0)]).unwrap();
        b.table("b", &[("id", 4.0), ("y", 4.0)]).unwrap();
        let s = b.build().unwrap();
        let sts = split_statements("SELECT id FROM a JOIN b ON x = y;").unwrap();
        let ctx = StmtCtx {
            schema: &s,
            pks: &[],
            strict: true,
            default_rows: 1.0,
        };
        assert!(matches!(
            parse_statement(&sts[0], &ctx),
            Err(IngestError::AmbiguousColumn { .. })
        ));
        let lenient = StmtCtx {
            strict: false,
            ..ctx
        };
        assert_eq!(
            parse_statement(&sts[0], &lenient).unwrap(),
            Parsed::Skip(SkipReason::UnknownReference)
        );
    }

    // ------------------------------------------------- PK row estimation

    #[test]
    fn pk_equality_implies_one_row() {
        let a = one("SELECT c_name FROM customer WHERE c_id = 42;");
        assert_eq!(a.rows, 1.0);
        assert_eq!(a.basis, RowBasis::PkEquality);
        // Reversed operands bind too.
        let a = one("SELECT c_name FROM customer WHERE 42 = c_id;");
        assert_eq!(a.basis, RowBasis::PkEquality);
        // Bind parameters count as constants.
        let a = one("UPDATE customer SET c_balance = 0 WHERE c_id = ?;");
        assert_eq!(a.rows, 1.0);
        assert_eq!(a.basis, RowBasis::PkEquality);
    }

    #[test]
    fn non_pk_predicates_fall_back_to_the_default() {
        // Range predicate on the PK.
        let a = one("SELECT c_name FROM customer WHERE c_id < 42;");
        assert_eq!(a.basis, RowBasis::Default);
        // Equality on a non-key column.
        let a = one("SELECT c_id FROM customer WHERE c_name = 'bob';");
        assert_eq!(a.basis, RowBasis::Default);
        // OR disables the inference (two branches → possibly two rows).
        let a = one("SELECT c_name FROM customer WHERE c_id = 1 OR c_id = 2;");
        assert_eq!(a.basis, RowBasis::Default);
        assert_eq!(a.rows, 1.0, "default_rows = 1.0");
    }

    #[test]
    fn composite_pk_requires_all_columns_bound() {
        let mut b = Schema::builder();
        b.table("oi", &[("o_id", 4.0), ("p_id", 4.0), ("qty", 2.0)])
            .unwrap();
        let s = b.build().unwrap();
        let pks = vec![vec![AttrId(0), AttrId(1)]];
        let ctx = StmtCtx {
            schema: &s,
            pks: &pks,
            strict: true,
            default_rows: 5.0,
        };
        let acc = |sql: &str| {
            let sts = split_statements(sql).unwrap();
            match parse_statement(&sts[0], &ctx).unwrap() {
                Parsed::Dml(d) => d.accesses.into_iter().next().unwrap(),
                other => panic!("expected DML, got {other:?}"),
            }
        };
        let full = acc("SELECT qty FROM oi WHERE o_id = 1 AND p_id = 2;");
        assert_eq!(full.rows, 1.0);
        assert_eq!(full.basis, RowBasis::PkEquality);
        let partial = acc("SELECT qty FROM oi WHERE o_id = 1;");
        assert_eq!(partial.rows, 5.0, "default_rows fallback");
        assert_eq!(partial.basis, RowBasis::Default);
    }

    #[test]
    fn insert_select_without_a_column_list() {
        let s = schema();
        let d = dml("INSERT INTO orders SELECT c_id, c_id, c_balance FROM customer;");
        assert_eq!(d.kind, StmtKind::Insert);
        assert_eq!(d.accesses.len(), 2);
        assert_eq!(d.accesses[0].write.len(), 3, "no list → whole row");
        assert_eq!(names(&s, &d.accesses[1].read), vec!["c_id", "c_balance"]);
    }

    #[test]
    fn expressions_and_negation_do_not_bind_the_key() {
        // The key inside arithmetic is not a point lookup.
        let a = one("SELECT c_name FROM customer WHERE c_balance + c_id = 7;");
        assert_eq!(a.basis, RowBasis::Default);
        let a = one("SELECT c_name FROM customer WHERE c_id = 7 + c_balance;");
        assert_eq!(a.basis, RowBasis::Default);
        let a = one("SELECT c_name FROM customer WHERE c_balance + 7 = c_id;");
        assert_eq!(a.basis, RowBasis::Default);
        // Negation matches every row but one.
        let a = one("SELECT c_name FROM customer WHERE NOT c_id = 7;");
        assert_eq!(a.basis, RowBasis::Default);
        // A plain equality next to an unrelated predicate still binds.
        let a = one("SELECT c_name FROM customer WHERE c_balance > 0 AND c_id = 7;");
        assert_eq!(a.basis, RowBasis::PkEquality);
    }

    #[test]
    fn scalar_subqueries_after_commas_in_clause_tails_flatten() {
        let d = dml("SELECT c_name FROM customer ORDER BY c_name, (SELECT MAX(o_id) FROM orders);");
        assert_eq!(d.accesses.len(), 2, "order-by subquery flattens");
    }

    #[test]
    fn derived_table_after_a_predicate_subquery_still_skips() {
        // The ON subquery contains a WHERE; the comma before the derived
        // table is still a FROM-list comma (the inner WHERE sits at
        // depth > 0) and the statement must skip, not abort.
        assert_eq!(
            parse_one(
                "SELECT c_name FROM customer JOIN orders \
                 ON c_id IN (SELECT o_c_id FROM orders WHERE o_total > 0), \
                 (SELECT c_id FROM customer) d;"
            )
            .unwrap(),
            Parsed::Skip(SkipReason::Subquery)
        );
    }

    #[test]
    fn operator_not_forms_do_not_void_pk_bindings() {
        let a = one("SELECT c_name FROM customer WHERE c_id = 7 AND c_name IS NOT NULL;");
        assert_eq!(a.basis, RowBasis::PkEquality);
        let d = dml(
            "SELECT c_name FROM customer WHERE c_id = 7 AND c_balance NOT IN \
             (SELECT o_total FROM orders);",
        );
        assert_eq!(d.accesses[0].basis, RowBasis::PkEquality);
        let a = one("SELECT c_name FROM customer WHERE c_id = 7 AND c_name NOT LIKE 'a%';");
        assert_eq!(a.basis, RowBasis::PkEquality);
    }

    #[test]
    fn inner_scope_bindings_do_not_pin_outer_scans() {
        // The subquery binds the customer PK, but the outer query scans
        // customer by balance — the shared access must not claim 1 row.
        let d = dml("SELECT c_name FROM customer WHERE c_balance > \
             (SELECT c_balance FROM customer WHERE c_id = 1);");
        assert_eq!(d.accesses.len(), 1);
        assert_eq!(d.accesses[0].basis, RowBasis::Default);
        // Same with an outer OR next to an inner PK equality.
        let d = dml("SELECT c_name FROM customer WHERE c_balance IN \
             (SELECT c_balance FROM customer WHERE c_id = 1) OR c_id = 5;");
        assert!(d.accesses.iter().all(|a| a.basis == RowBasis::Default));
        // An inner binding on a table the outer scope does NOT touch
        // still pins that table.
        let d = dml("SELECT c_name FROM customer WHERE c_id IN \
             (SELECT o_c_id FROM orders WHERE o_id = 7);");
        let orders = d.accesses.iter().find(|a| a.table == TableId(1)).unwrap();
        assert_eq!(orders.basis, RowBasis::PkEquality);
        assert_eq!(orders.rows, 1.0);
    }

    #[test]
    fn write_targets_are_not_pinned_by_same_table_subqueries() {
        // No WHERE: every customer row is written, even though the scalar
        // subquery's PK lookup reads exactly one.
        let d = dml("UPDATE customer SET c_balance = \
             (SELECT c_balance FROM customer WHERE c_id = 1);");
        assert_eq!(d.accesses.len(), 1);
        assert_eq!(d.accesses[0].basis, RowBasis::Default);
        let d = dml("DELETE FROM customer WHERE c_balance < \
             (SELECT c_balance FROM customer WHERE c_id = 1);");
        assert_eq!(d.accesses[0].basis, RowBasis::Default);
    }

    #[test]
    fn clause_keywords_inside_functions_do_not_split_the_predicate() {
        // The depth-1 FOR must not end the binding region early: the OR
        // after it voids the c_id binding.
        let d = dml("SELECT c_name FROM customer WHERE c_id = 5 AND \
             SUBSTRING(c_name FOR 3) = 'ab' OR c_balance > 0;");
        assert_eq!(d.accesses[0].basis, RowBasis::Default);
    }

    #[test]
    fn unterminated_using_is_a_typed_error() {
        assert!(matches!(
            parse_one("SELECT c_name, o_total FROM customer JOIN orders USING (c_id;"),
            Err(IngestError::Syntax { .. })
        ));
    }

    #[test]
    fn self_join_bindings_do_not_pin_the_shared_access() {
        let d = dml("SELECT a.c_name, b.c_name FROM customer a JOIN customer b \
             ON a.c_balance = b.c_balance WHERE a.c_id = 1;");
        assert_eq!(d.accesses.len(), 1, "one access per table");
        assert_eq!(d.accesses[0].basis, RowBasis::Default);
    }

    #[test]
    fn derived_tables_are_skipped_not_misparsed() {
        // `FROM (SELECT ...) alias` has no flattenable shape; it must
        // skip with a Subquery reason in strict mode too — not abort
        // with a bogus unknown-table error.
        for sql in [
            "SELECT x.c_name FROM (SELECT c_name FROM customer) x;",
            "SELECT c_name FROM customer JOIN (SELECT o_c_id FROM orders) o ON c_id = o_c_id;",
            "SELECT c_name FROM customer, (SELECT o_id FROM orders) o;",
        ] {
            assert_eq!(
                parse_one(sql).unwrap(),
                Parsed::Skip(SkipReason::Subquery),
                "{sql}"
            );
        }
        // Scalar subqueries in the select list still flatten.
        let d = dml("SELECT c_name, (SELECT o_total FROM orders WHERE o_id = 1) FROM customer;");
        assert_eq!(d.accesses.len(), 2);
    }

    #[test]
    fn sel_annotation_scales_default_estimates_only() {
        let d = dml("SELECT /*+ sel=4 */ c_name, o_total FROM customer \
             JOIN orders ON c_id = o_c_id WHERE o_id = 7;");
        let cust = &d.accesses[0];
        let ord = &d.accesses[1];
        assert_eq!(cust.rows, 4.0, "default 1.0 × sel 4");
        assert_eq!(cust.basis, RowBasis::Default);
        assert_eq!(ord.rows, 1.0, "PK-bound tables ignore sel");
        assert_eq!(ord.basis, RowBasis::PkEquality);
    }

    #[test]
    fn unsupported_constructs_are_skipped_with_reasons() {
        let skip = |sql: &str| match parse_one(sql).unwrap() {
            Parsed::Skip(r) => r,
            other => panic!("expected skip for {sql:?}, got {other:?}"),
        };
        assert_eq!(
            skip("SELECT c_name FROM customer UNION SELECT c_name FROM customer;"),
            SkipReason::Subquery
        );
        assert_eq!(
            skip("UPDATE customer, orders SET c_balance = 0;"),
            SkipReason::Join
        );
        assert_eq!(skip("VACUUM;"), SkipReason::NotADmlStatement);
        assert_eq!(skip("SELECT 1 FROM customer;"), SkipReason::NoColumns);
    }

    #[test]
    fn transaction_brackets() {
        assert_eq!(parse_one("BEGIN;").unwrap(), Parsed::Begin);
        assert_eq!(parse_one("START TRANSACTION;").unwrap(), Parsed::Begin);
        assert_eq!(parse_one("COMMIT;").unwrap(), Parsed::Commit);
        assert_eq!(parse_one("ROLLBACK;").unwrap(), Parsed::Rollback);
    }

    #[test]
    fn strict_vs_lenient() {
        assert!(matches!(
            parse_with("SELECT nope FROM customer;", true),
            Err(IngestError::UnknownColumn { .. })
        ));
        assert_eq!(
            parse_with("SELECT nope FROM customer;", false).unwrap(),
            Parsed::Skip(SkipReason::UnknownReference)
        );
        assert!(matches!(
            parse_with("SELECT c_id FROM nowhere;", true),
            Err(IngestError::UnknownTable { .. })
        ));
    }
}
