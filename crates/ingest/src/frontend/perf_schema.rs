//! MySQL `performance_schema` digest reader.
//!
//! Reads `performance_schema.events_statements_summary_by_digest` exported
//! as CSV or TSV (`mysql --batch` emits TSV; `SELECT ... INTO OUTFILE`
//! with `FIELDS TERMINATED BY ','` emits CSV). Required columns:
//! `DIGEST_TEXT` (the normalized template, `?` placeholders, backtick
//! quoting) and `COUNT_STAR` (executions). Row counts come from
//! `SUM_ROWS_SENT` when it is positive (rows a `SELECT` returned),
//! falling back to `SUM_ROWS_EXAMINED` (rows the statement scanned —
//! an upper bound, but the faithful driver of the byte-cost model for
//! writes, which send nothing); both are totals across executions, so
//! the per-call average divides by `COUNT_STAR`. When neither is
//! positive the template falls back to the annotation / primary-key /
//! default row-estimation pipeline.
//!
//! An optional `txn` column (non-standard, same extension as the
//! `pg_stat_statements` readers) groups rows into one multi-statement
//! transaction template. Header matching is case-insensitive, so
//! lower-cased exports work too. MySQL's `NULL` literal in either rows
//! column means "not measured".
//!
//! Digest text that exceeds `performance_schema_max_digest_length` is
//! truncated mid-token by the server; such templates fail statement
//! parsing and surface as typed errors (strict) or `Unparsable` skips
//! (lenient), never panics.

use super::{parse_count, RecordBatch, StatsReader, StatsRecord};
use crate::error::IngestError;
use crate::report::SkipReason;
use crate::IngestOptions;

/// `performance_schema.events_statements_summary_by_digest` as CSV/TSV
/// (`--stats-format perf-schema`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfSchema;

/// Parses an optional rows-total field: absent column, empty field or
/// MySQL's `NULL` literal all mean "not measured".
fn rows_total(field: Option<&str>, column: &str, line: u32) -> Result<Option<f64>, IngestError> {
    match field {
        None => Ok(None),
        Some(t) if t.trim().is_empty() || t.trim().eq_ignore_ascii_case("null") => Ok(None),
        Some(t) => parse_count(t, column, line).map(Some),
    }
}

impl StatsReader for PerfSchema {
    fn format_name(&self) -> &'static str {
        "perf-schema"
    }

    fn records(&self, input: &str, opts: &IngestOptions) -> Result<RecordBatch, IngestError> {
        let table = super::csv::parse_delimited(input)?;
        let digest_col = table.require("DIGEST_TEXT")?;
        let count_col = table.require("COUNT_STAR")?;
        let examined_col = table.column("SUM_ROWS_EXAMINED");
        let sent_col = table.column("SUM_ROWS_SENT");
        let txn_col = table.column("txn");

        let mut batch = RecordBatch::default();
        for row in &table.rows {
            batch.rows_seen += 1;
            if row.fields.len() != table.header.len() {
                let e = IngestError::TruncatedStatsRow {
                    line: row.line,
                    expected: table.header.len(),
                    found: row.fields.len(),
                };
                if opts.strict {
                    return Err(e);
                }
                batch.skip(
                    row.line,
                    SkipReason::MalformedStatsRow,
                    &row.fields.join(","),
                );
                continue;
            }
            let digest = &row.fields[digest_col];
            let numbers = (|| -> Result<(f64, Option<f64>, Option<f64>), IngestError> {
                let count = parse_count(&row.fields[count_col], "COUNT_STAR", row.line)?;
                let sent = rows_total(
                    sent_col.map(|i| row.fields[i].as_str()),
                    "SUM_ROWS_SENT",
                    row.line,
                )?;
                let examined = rows_total(
                    examined_col.map(|i| row.fields[i].as_str()),
                    "SUM_ROWS_EXAMINED",
                    row.line,
                )?;
                Ok((count, sent, examined))
            })();
            let (count, sent, examined) = match numbers {
                Ok(triple) => triple,
                Err(e) if opts.strict => return Err(e),
                Err(_) => {
                    batch.skip(row.line, SkipReason::MalformedStatsRow, digest);
                    continue;
                }
            };
            if count == 0.0 {
                batch.skip(row.line, SkipReason::ZeroCalls, digest);
                continue;
            }
            let total = match sent {
                Some(s) if s > 0.0 => Some(s),
                _ => examined,
            };
            batch.records.push(StatsRecord {
                template: digest.clone(),
                calls: count,
                rows: total.map(|t| t / count).filter(|&r| r > 0.0),
                group: txn_col
                    .map(|i| row.fields[i].trim())
                    .filter(|g| !g.is_empty())
                    .map(str::to_string),
                line: row.line,
            });
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(input: &str) -> Result<RecordBatch, IngestError> {
        PerfSchema.records(input, &IngestOptions::default())
    }

    #[test]
    fn tsv_digest_dump_with_sent_and_examined() {
        let batch = read(
            "DIGEST\tDIGEST_TEXT\tCOUNT_STAR\tSUM_ROWS_EXAMINED\tSUM_ROWS_SENT\n\
             abc\tSELECT `a` FROM `t` WHERE `id` = ?\t200\t200\t200\n\
             def\tUPDATE `t` SET `a` = ?\t50\t150\t0\n",
        )
        .unwrap();
        assert_eq!(batch.records.len(), 2);
        assert_eq!(batch.records[0].calls, 200.0);
        assert_eq!(batch.records[0].rows, Some(1.0), "SUM_ROWS_SENT wins");
        assert_eq!(
            batch.records[1].rows,
            Some(3.0),
            "writes send nothing; examined drives the estimate"
        );
    }

    #[test]
    fn null_and_missing_row_columns_mean_unmeasured() {
        let batch = read("DIGEST_TEXT,COUNT_STAR,SUM_ROWS_SENT\nSELECT 1,10,NULL\n").unwrap();
        assert_eq!(batch.records[0].rows, None);
        let batch = read("DIGEST_TEXT,COUNT_STAR\nSELECT 1,10\n").unwrap();
        assert_eq!(batch.records[0].rows, None);
    }

    #[test]
    fn missing_required_columns_are_typed() {
        assert!(matches!(
            read("query,calls\nSELECT 1,2\n"),
            Err(IngestError::MissingStatsColumn { ref column, .. }) if column == "DIGEST_TEXT"
        ));
        assert!(matches!(
            read("DIGEST_TEXT,calls\nSELECT 1,2\n"),
            Err(IngestError::MissingStatsColumn { ref column, .. }) if column == "COUNT_STAR"
        ));
    }

    #[test]
    fn malformed_rows_error_strict_skip_lenient() {
        let dump = "DIGEST_TEXT,COUNT_STAR\nSELECT 1,many\n";
        assert!(matches!(
            read(dump),
            Err(IngestError::StatsNumber { ref column, .. }) if column == "COUNT_STAR"
        ));
        let batch = PerfSchema
            .records(dump, &IngestOptions::default().lenient())
            .unwrap();
        assert!(batch.records.is_empty());
        assert_eq!(batch.skipped[0].reason, SkipReason::MalformedStatsRow);
    }

    #[test]
    fn lowercase_headers_are_accepted() {
        let batch = read("digest_text,count_star\nSELECT 1,7\n").unwrap();
        assert_eq!(batch.records[0].calls, 7.0);
    }
}
