//! `pg_stat_statements` dump readers (CSV and JSON).
//!
//! PostgreSQL's `pg_stat_statements` view already holds exactly the
//! aggregated workload statistics the cost model wants: one row per
//! normalized statement template with `calls` (executions) and `rows`
//! (total rows retrieved or affected across all calls). These readers
//! accept the two common export shapes:
//!
//! * **CSV** — `COPY (SELECT query, calls, rows FROM pg_stat_statements)
//!   TO '...' CSV HEADER` or `psql --csv`; column order is free, extra
//!   columns (`userid`, `queryid`, `total_exec_time`, ...) are ignored.
//! * **JSON** — an array of row objects, e.g. from
//!   `SELECT json_agg(s) FROM pg_stat_statements s`.
//!
//! Required columns: `query`, `calls`. Optional: `rows` (empty/0 falls
//! back to the annotation / primary-key / default estimation pipeline —
//! useful when per-table row counts differ across a join) and `txn`, a
//! non-standard extension column grouping rows into one multi-statement
//! transaction template.
//!
//! Template text is the view's normalized form: `$1`/`$2` placeholders
//! lex as parameters exactly like `?`, and `/*+ rows=… sel=… */` hint
//! comments (which `pg_stat_statements` preserves) still apply. Rows with
//! the same template (e.g. one per `userid`) merge downstream: calls sum,
//! row counts average call-weighted.

use super::{parse_count, RecordBatch, StatsReader, StatsRecord};
use crate::error::IngestError;
use crate::report::SkipReason;
use crate::IngestOptions;

/// `pg_stat_statements` as CSV (`--stats-format pgss-csv`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PgssCsv;

/// `pg_stat_statements` as a JSON array (`--stats-format pgss-json`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PgssJson;

/// Converts one raw `(query, calls, rows, txn)` quadruple into a record,
/// sharing the calls/rows semantics between the CSV and JSON forms:
/// `rows` is the *total* across calls, so the per-call average is
/// `rows / calls`; a zero or missing total means "not measured".
fn make_record(
    batch: &mut RecordBatch,
    query: &str,
    calls_text: &str,
    rows_text: Option<&str>,
    group: Option<String>,
    line: u32,
    strict: bool,
) -> Result<(), IngestError> {
    batch.rows_seen += 1;
    let numbers = (|| -> Result<(f64, Option<f64>), IngestError> {
        let calls = parse_count(calls_text, "calls", line)?;
        let rows_total = match rows_text {
            None => None,
            Some(t) if t.trim().is_empty() => None,
            Some(t) => Some(parse_count(t, "rows", line)?),
        };
        Ok((calls, rows_total))
    })();
    let (calls, rows_total) = match numbers {
        Ok(pair) => pair,
        Err(e) if strict => return Err(e),
        Err(_) => {
            batch.skip(line, SkipReason::MalformedStatsRow, query);
            return Ok(());
        }
    };
    if calls == 0.0 {
        batch.skip(line, SkipReason::ZeroCalls, query);
        return Ok(());
    }
    let rows = rows_total.map(|t| t / calls).filter(|&r| r > 0.0);
    batch.records.push(StatsRecord {
        template: query.to_string(),
        calls,
        rows,
        group,
        line,
    });
    Ok(())
}

impl StatsReader for PgssCsv {
    fn format_name(&self) -> &'static str {
        "pgss-csv"
    }

    fn records(&self, input: &str, opts: &IngestOptions) -> Result<RecordBatch, IngestError> {
        let table = super::csv::parse_delimited(input)?;
        let query_col = table.require("query")?;
        let calls_col = table.require("calls")?;
        let rows_col = table.column("rows");
        let txn_col = table.column("txn");

        let mut batch = RecordBatch::default();
        for row in &table.rows {
            if row.fields.len() != table.header.len() {
                let e = IngestError::TruncatedStatsRow {
                    line: row.line,
                    expected: table.header.len(),
                    found: row.fields.len(),
                };
                if opts.strict {
                    return Err(e);
                }
                batch.rows_seen += 1;
                batch.skip(
                    row.line,
                    SkipReason::MalformedStatsRow,
                    &row.fields.join(","),
                );
                continue;
            }
            let group = txn_col
                .map(|i| row.fields[i].trim())
                .filter(|g| !g.is_empty())
                .map(str::to_string);
            make_record(
                &mut batch,
                &row.fields[query_col],
                &row.fields[calls_col],
                rows_col.map(|i| row.fields[i].as_str()),
                group,
                row.line,
                opts.strict,
            )?;
        }
        Ok(batch)
    }
}

impl StatsReader for PgssJson {
    fn format_name(&self) -> &'static str {
        "pgss-json"
    }

    fn records(&self, input: &str, opts: &IngestOptions) -> Result<RecordBatch, IngestError> {
        let value: serde_json::Value =
            serde_json::from_str(input).map_err(|e| IngestError::StatsJson {
                detail: e.to_string(),
            })?;
        let Some(rows) = value.as_array() else {
            return Err(IngestError::StatsJson {
                detail: "expected a top-level array of row objects".to_string(),
            });
        };
        if rows.is_empty() {
            return Err(IngestError::EmptyStats);
        }

        let mut batch = RecordBatch::default();
        // JSON carries no line numbers; the 1-based element index stands in.
        for (idx, row) in rows.iter().enumerate() {
            let line = (idx + 1) as u32;
            let malformed = |detail: &str| IngestError::StatsJson {
                detail: format!("element {line}: {detail}"),
            };
            let (query, calls) = match (
                row.get("query").and_then(|v| v.as_str()),
                row.get("calls").and_then(|v| v.as_f64()),
            ) {
                (Some(q), Some(c)) if c.is_finite() && c >= 0.0 => (q, c),
                (None, _) => {
                    if opts.strict {
                        return Err(malformed("missing string \"query\""));
                    }
                    batch.rows_seen += 1;
                    batch.skip(line, SkipReason::MalformedStatsRow, &row.to_string());
                    continue;
                }
                (Some(q), _) => {
                    if opts.strict {
                        return Err(malformed("missing or non-numeric \"calls\""));
                    }
                    batch.rows_seen += 1;
                    batch.skip(line, SkipReason::MalformedStatsRow, q);
                    continue;
                }
            };
            batch.rows_seen += 1;
            if calls == 0.0 {
                batch.skip(line, SkipReason::ZeroCalls, query);
                continue;
            }
            let rows_total = row.get("rows").and_then(|v| v.as_f64());
            let group = row
                .get("txn")
                .and_then(|v| v.as_str())
                .filter(|g| !g.trim().is_empty())
                .map(str::to_string);
            batch.records.push(StatsRecord {
                template: query.to_string(),
                calls,
                rows: rows_total.map(|t| t / calls).filter(|&r| r > 0.0),
                group,
                line,
            });
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_csv(input: &str) -> Result<RecordBatch, IngestError> {
        PgssCsv.records(input, &IngestOptions::default())
    }

    #[test]
    fn csv_extracts_query_calls_rows_ignoring_extras() {
        let batch = read_csv(
            "userid,queryid,query,calls,total_exec_time,rows\n\
             10,123,\"SELECT a FROM t WHERE id = $1\",120,9.5,120\n\
             10,124,UPDATE t SET a = $1,30,1.5,30\n",
        )
        .unwrap();
        assert_eq!(batch.records.len(), 2);
        assert_eq!(batch.rows_seen, 2);
        let r = &batch.records[0];
        assert_eq!(r.template, "SELECT a FROM t WHERE id = $1");
        assert_eq!(r.calls, 120.0);
        assert_eq!(r.rows, Some(1.0), "total 120 over 120 calls");
        assert_eq!(r.line, 2);
        assert_eq!(batch.records[1].rows, Some(1.0));
    }

    #[test]
    fn csv_empty_rows_column_means_unmeasured() {
        let batch = read_csv("query,calls,rows\nSELECT 1,10,\n").unwrap();
        assert_eq!(batch.records[0].rows, None);
        let batch = read_csv("query,calls,rows\nSELECT 1,10,0\n").unwrap();
        assert_eq!(batch.records[0].rows, None, "zero total = unmeasured");
    }

    #[test]
    fn csv_txn_column_labels_groups() {
        let batch = read_csv(
            "query,calls,rows,txn\nSELECT 1,8,8,checkout\nSELECT 2,8,8,checkout\nSELECT 3,5,5,\n",
        )
        .unwrap();
        assert_eq!(batch.records[0].group.as_deref(), Some("checkout"));
        assert_eq!(batch.records[1].group.as_deref(), Some("checkout"));
        assert_eq!(batch.records[2].group, None);
    }

    #[test]
    fn csv_missing_required_columns_is_typed() {
        assert!(matches!(
            read_csv("a,b,c\n1,2,3\n"),
            Err(IngestError::MissingStatsColumn { ref column, .. }) if column == "query"
        ));
        assert!(matches!(
            read_csv("query,count\nSELECT 1,2\n"),
            Err(IngestError::MissingStatsColumn { ref column, .. }) if column == "calls"
        ));
    }

    #[test]
    fn csv_truncated_and_non_numeric_rows() {
        assert_eq!(
            read_csv("query,calls\nSELECT 1\n"),
            Err(IngestError::TruncatedStatsRow {
                line: 2,
                expected: 2,
                found: 1
            })
        );
        assert!(matches!(
            read_csv("query,calls\nSELECT 1,often\n"),
            Err(IngestError::StatsNumber { line: 2, .. })
        ));
        // Lenient mode skips both instead.
        let opts = IngestOptions::default().lenient();
        let batch = PgssCsv
            .records("query,calls\nSELECT 1\nSELECT 2,often\nSELECT 3,4\n", &opts)
            .unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.skipped.len(), 2);
        assert!(batch
            .skipped
            .iter()
            .all(|s| s.reason == SkipReason::MalformedStatsRow));
        assert_eq!(batch.rows_seen, 3);
    }

    #[test]
    fn csv_zero_calls_rows_are_skipped() {
        let batch = read_csv("query,calls\nSELECT 1,0\nSELECT 2,5\n").unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.skipped.len(), 1);
        assert_eq!(batch.skipped[0].reason, SkipReason::ZeroCalls);
    }

    #[test]
    fn json_array_of_objects() {
        let batch = PgssJson
            .records(
                r#"[
                    {"query": "SELECT a FROM t WHERE id = $1", "calls": 40, "rows": 40},
                    {"query": "DELETE FROM t WHERE id = $1", "calls": 5, "txn": "purge"}
                ]"#,
                &IngestOptions::default(),
            )
            .unwrap();
        assert_eq!(batch.records.len(), 2);
        assert_eq!(batch.records[0].rows, Some(1.0));
        assert_eq!(batch.records[0].line, 1);
        assert_eq!(batch.records[1].rows, None);
        assert_eq!(batch.records[1].group.as_deref(), Some("purge"));
    }

    #[test]
    fn json_malformed_inputs_are_typed() {
        let opts = IngestOptions::default();
        assert!(matches!(
            PgssJson.records("not json", &opts),
            Err(IngestError::StatsJson { .. })
        ));
        assert!(matches!(
            PgssJson.records(r#"{"query": "SELECT 1"}"#, &opts),
            Err(IngestError::StatsJson { .. })
        ));
        assert_eq!(PgssJson.records("[]", &opts), Err(IngestError::EmptyStats));
        assert!(matches!(
            PgssJson.records(r#"[{"calls": 3}]"#, &opts),
            Err(IngestError::StatsJson { .. })
        ));
        assert!(matches!(
            PgssJson.records(r#"[{"query": "SELECT 1", "calls": "x"}]"#, &opts),
            Err(IngestError::StatsJson { .. })
        ));
        // Lenient mode skips malformed elements.
        let batch = PgssJson
            .records(
                r#"[{"calls": 3}, {"query": "SELECT 1", "calls": 2}]"#,
                &IngestOptions::default().lenient(),
            )
            .unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.skipped.len(), 1);
    }
}
