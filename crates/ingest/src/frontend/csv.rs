//! Minimal delimited-text reader for statistics dumps.
//!
//! Handles exactly the shapes `COPY ... TO ... CSV HEADER`, `psql --csv`
//! and `mysql --batch` emit: a header row naming the columns, then one
//! record per row; fields may be double-quoted with `""` escapes and may
//! contain the delimiter and newlines inside quotes. The delimiter is
//! sniffed from the header line — a tab anywhere makes it TSV (the
//! `mysql --batch` default), otherwise CSV.
//!
//! Column *values* are returned verbatim; interpretation (which columns
//! are required, which are numeric) belongs to the per-format readers.

use crate::error::IngestError;

/// One data row: its fields plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CsvRow {
    /// 1-based source line the row starts on.
    pub line: u32,
    /// Field values, unquoted and unescaped.
    pub fields: Vec<String>,
}

/// A parsed delimited file: header plus data rows.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CsvTable {
    /// Header column names, verbatim.
    pub header: Vec<String>,
    /// 1-based line of the header row.
    pub header_line: u32,
    /// Data rows in file order.
    pub rows: Vec<CsvRow>,
}

impl CsvTable {
    /// Case-insensitive header lookup → field index.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.header
            .iter()
            .position(|h| h.trim().eq_ignore_ascii_case(name))
    }

    /// Header lookup that errors with [`IngestError::MissingStatsColumn`].
    pub fn require(&self, name: &str) -> Result<usize, IngestError> {
        self.column(name)
            .ok_or_else(|| IngestError::MissingStatsColumn {
                column: name.to_string(),
                line: self.header_line,
            })
    }
}

/// Splits one row starting at byte `i`; returns the fields and the index
/// just past the row's terminating newline. `line` advances across
/// embedded newlines.
fn split_row(
    src: &str,
    mut i: usize,
    line: &mut u32,
    delim: char,
) -> Result<(Vec<String>, usize), IngestError> {
    let bytes = src.as_bytes();
    let start_line = *line;
    let mut fields = Vec::new();
    let mut field = String::new();
    loop {
        match bytes.get(i) {
            None | Some(b'\n') => {
                if matches!(bytes.get(i), Some(b'\n')) {
                    *line += 1;
                    i += 1;
                }
                fields.push(std::mem::take(&mut field));
                return Ok((fields, i));
            }
            Some(b'\r') if bytes.get(i + 1) == Some(&b'\n') => {
                *line += 1;
                i += 2;
                fields.push(std::mem::take(&mut field));
                return Ok((fields, i));
            }
            Some(&b) if b as char == delim => {
                fields.push(std::mem::take(&mut field));
                i += 1;
            }
            Some(b'"') if field.is_empty() => {
                // Quoted field: read to the closing quote, honoring "".
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(IngestError::UnterminatedString { line: start_line }),
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            field.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let c = src[i..].chars().next().expect("on a char boundary");
                            if c == '\n' {
                                *line += 1;
                            }
                            field.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
            }
            Some(_) => {
                let c = src[i..].chars().next().expect("on a char boundary");
                field.push(c);
                i += c.len_utf8();
            }
        }
    }
}

/// Parses delimited statistics text into a header plus data rows. Blank
/// lines are skipped; field-count validation is left to the caller (rows
/// carry their own line numbers for diagnostics).
pub(crate) fn parse_delimited(src: &str) -> Result<CsvTable, IngestError> {
    let mut i = 0usize;
    let mut line: u32 = 1;
    let bytes = src.as_bytes();
    let mut header: Option<(Vec<String>, u32)> = None;
    let mut delim = ',';
    let mut rows = Vec::new();

    while i < bytes.len() {
        // Skip blank lines between records.
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'\r' && bytes.get(i + 1) == Some(&b'\n') {
            line += 1;
            i += 2;
            continue;
        }
        if header.is_none() {
            // Sniff the delimiter from the raw header line.
            let eol = src[i..].find('\n').map_or(src.len(), |n| i + n);
            delim = if src[i..eol].contains('\t') {
                '\t'
            } else {
                ','
            };
        }
        let row_line = line;
        let (fields, next) = split_row(src, i, &mut line, delim)?;
        i = next;
        if fields.iter().all(|f| f.trim().is_empty()) {
            continue; // fully blank record
        }
        match &header {
            None => header = Some((fields, row_line)),
            Some(_) => rows.push(CsvRow {
                line: row_line,
                fields,
            }),
        }
    }

    let Some((header, header_line)) = header else {
        return Err(IngestError::EmptyStats);
    };
    Ok(CsvTable {
        header,
        header_line,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_quoted_fields_with_delimiters_and_newlines() {
        let t = parse_delimited(
            "query,calls,rows\n\"SELECT a, b FROM t\nWHERE c = $1\",10,20\nplain,1,2\n",
        )
        .unwrap();
        assert_eq!(t.header, vec!["query", "calls", "rows"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].fields[0], "SELECT a, b FROM t\nWHERE c = $1");
        assert_eq!(t.rows[0].line, 2);
        assert_eq!(t.rows[1].line, 4, "embedded newline advances the count");
    }

    #[test]
    fn non_ascii_text_survives_both_paths() {
        let t = parse_delimited("q,c\n\"SELECT 'Zürich, Škoda'\",5\nnaïve — plain,6\n").unwrap();
        assert_eq!(t.rows[0].fields[0], "SELECT 'Zürich, Škoda'");
        assert_eq!(t.rows[1].fields[0], "naïve — plain");
    }

    #[test]
    fn doubled_quotes_unescape() {
        let t = parse_delimited("q,c\n\"say \"\"hi\"\"\",5\n").unwrap();
        assert_eq!(t.rows[0].fields[0], "say \"hi\"");
    }

    #[test]
    fn sniffs_tabs_and_handles_crlf() {
        let t = parse_delimited("DIGEST_TEXT\tCOUNT_STAR\r\nSELECT 1\t42\r\n").unwrap();
        assert_eq!(t.header, vec!["DIGEST_TEXT", "COUNT_STAR"]);
        assert_eq!(t.rows[0].fields, vec!["SELECT 1", "42"]);
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = parse_delimited("Query,CALLS\nx,1\n").unwrap();
        assert_eq!(t.column("query"), Some(0));
        assert_eq!(t.require("calls").unwrap(), 1);
        assert!(matches!(
            t.require("rows"),
            Err(IngestError::MissingStatsColumn { ref column, line: 1 }) if column == "rows"
        ));
    }

    #[test]
    fn empty_and_blank_inputs_are_typed_errors() {
        assert_eq!(parse_delimited(""), Err(IngestError::EmptyStats));
        assert_eq!(parse_delimited("\n\n  \n"), Err(IngestError::EmptyStats));
    }

    #[test]
    fn unterminated_quote_is_a_typed_error() {
        assert_eq!(
            parse_delimited("q,c\n\"never closed,1\n"),
            Err(IngestError::UnterminatedString { line: 2 })
        );
    }
}
