//! Query-log frontend: statements → transactions → aggregated workload.
//!
//! Statements between `BEGIN`/`COMMIT` brackets form one transaction
//! occurrence; statements outside brackets are one-statement transactions
//! (the fallback for logs without explicit bracketing). Occurrences whose
//! parsed statement sequences coincide are aggregated into one
//! *transaction template* whose execution count becomes the query
//! frequency `f_q` — so a log with the Payment transaction 10 000 times
//! produces one `Payment` template at frequency 10 000, exactly the
//! workload statistics the cost model wants.
//!
//! Each parsed statement carries one access per touched table (joins,
//! subqueries and `INSERT ... SELECT` flatten — see [`crate::stmt`]); an
//! access with both read and write attributes (an `UPDATE` target) is
//! split into read + write sub-queries via
//! [`vpart_model::WorkloadBuilder::add_update`], mirroring the hand-built
//! TPC-C model (§5.2 of the paper).
//!
//! Annotations refine the statistics: `-- rows=N` sets a statement's
//! per-table row count (`-- sel=F` scales estimated ones), `-- freq=N`
//! scales an occurrence (on `BEGIN`/`COMMIT` or a bare statement) or one
//! statement's per-execution multiplicity (inside a block), and
//! `-- txn=Name` names the template. `freq=`/`txn=` may sit on either
//! bracket of a block; conflicting values are an error.
//!
//! Aggregation, sampling scale-up and confidence thresholds are shared
//! with the statistics frontends — see [`crate::frontend`].

use super::{
    access_estimates, aggregate_and_build, coalesce, EstimateDedup, FrontendCtx, MinerStats,
    Occurrence, WorkloadFrontend,
};
use crate::error::IngestError;
use crate::report::{RowEstimate, SkipReason, Skipped};
use crate::stmt::{parse_statement, statement_stats, Parsed, ParsedDml, StmtCtx};
use crate::IngestOptions;
use vpart_model::{Schema, Workload};

/// The raw-query-log frontend (`--log`).
#[derive(Debug, Clone, Copy, Default)]
pub struct LogFrontend;

impl WorkloadFrontend for LogFrontend {
    fn name(&self) -> &'static str {
        "query-log"
    }

    fn mine(
        &self,
        input: &str,
        ctx: &FrontendCtx<'_>,
    ) -> Result<(Workload, MinerStats), IngestError> {
        mine_workload(input, ctx.schema, ctx.primary_keys, ctx.opts)
    }
}

/// The `freq=` weight of a transaction bracket, `None` when unannotated.
fn bracket_weight(stmt: &crate::lexer::RawStatement) -> Result<Option<f64>, IngestError> {
    Ok(statement_stats(stmt)?.freq)
}

/// An open `BEGIN` block under construction.
struct OpenBlock {
    line: u32,
    stmts: Vec<ParsedDml>,
    name: Option<String>,
    /// `freq=` from the `BEGIN` bracket, if any.
    weight: Option<f64>,
    /// Raw statements of the block, for rollback diagnostics.
    raws: Vec<(u32, String)>,
    /// Row estimates of the block, dropped if it rolls back.
    estimates: Vec<RowEstimate>,
}

/// Mines `log` into a [`Workload`] against the parsed schema.
pub fn mine_workload(
    log: &str,
    schema: &Schema,
    primary_keys: &[Vec<vpart_model::AttrId>],
    opts: &IngestOptions,
) -> Result<(Workload, MinerStats), IngestError> {
    let statements = crate::lexer::split_statements(log)?;
    if statements.is_empty() {
        return Err(IngestError::EmptyLog);
    }
    let ctx = StmtCtx {
        schema,
        pks: primary_keys,
        strict: opts.strict,
        default_rows: opts.default_rows,
    };

    let mut stats = MinerStats::default();
    let mut occurrences: Vec<Occurrence> = Vec::new();
    let mut open: Option<OpenBlock> = None;
    let mut estimates = EstimateDedup::default();

    for stmt in &statements {
        let parsed = parse_statement(stmt, &ctx)?;
        match parsed {
            Parsed::Begin => {
                if open.is_some() {
                    return Err(IngestError::NestedTransaction { line: stmt.line });
                }
                open = Some(OpenBlock {
                    line: stmt.line,
                    stmts: Vec::new(),
                    name: stmt.annotation("txn").map(str::to_string),
                    weight: bracket_weight(stmt)?,
                    raws: Vec::new(),
                    estimates: Vec::new(),
                });
            }
            Parsed::Commit => {
                let Some(block) = open.take() else {
                    return Err(IngestError::CommitOutsideTransaction { line: stmt.line });
                };
                // `txn=` / `freq=` may sit on either bracket; both ends
                // must agree when both are given.
                let name = merge_annotation(
                    "txn",
                    block.name,
                    stmt.annotation("txn").map(str::to_string),
                    stmt.line,
                )?;
                let commit_weight = bracket_weight(stmt)?;
                let weight = match (block.weight, commit_weight) {
                    (Some(a), Some(b)) if a != b => {
                        return Err(IngestError::ConflictingAnnotation {
                            key: "freq".to_string(),
                            first: a.to_string(),
                            second: b.to_string(),
                            line: stmt.line,
                        })
                    }
                    (a, b) => a.or(b).unwrap_or(1.0),
                };
                if !block.stmts.is_empty() {
                    stats.txn_occurrences += 1;
                    estimates.commit(&mut stats, block.estimates);
                    occurrences.push(Occurrence {
                        name,
                        stmts: coalesce(block.stmts),
                        weight,
                    });
                }
            }
            Parsed::Rollback => {
                let Some(block) = open.take() else {
                    return Err(IngestError::RollbackOutsideTransaction { line: stmt.line });
                };
                stats.statements_ingested -= block.stmts.len();
                for (line, snippet) in block.raws {
                    stats.skipped.push(Skipped {
                        line,
                        reason: SkipReason::RolledBack,
                        snippet,
                    });
                }
            }
            Parsed::Dml(dml) => {
                stats.statements_seen += 1;
                stats.statements_ingested += 1;
                let stmt_estimates = access_estimates(&dml, stmt.line, &stmt.snippet, schema);
                match &mut open {
                    Some(block) => {
                        if block.name.is_none() {
                            block.name = stmt.annotation("txn").map(str::to_string);
                        }
                        block.raws.push((stmt.line, stmt.snippet.clone()));
                        block.estimates.extend(stmt_estimates);
                        block.stmts.push(dml);
                    }
                    None => {
                        let weight = dml.freq;
                        let mut dml = dml;
                        dml.freq = 1.0;
                        stats.txn_occurrences += 1;
                        estimates.commit(&mut stats, stmt_estimates);
                        occurrences.push(Occurrence {
                            name: stmt.annotation("txn").map(str::to_string),
                            stmts: coalesce(vec![dml]),
                            weight,
                        });
                    }
                }
            }
            Parsed::Skip(reason) => {
                stats.statements_seen += 1;
                stats.skipped.push(Skipped {
                    line: stmt.line,
                    reason,
                    snippet: stmt.snippet.clone(),
                });
            }
        }
    }
    if let Some(block) = open {
        return Err(IngestError::UnterminatedTransaction { line: block.line });
    }
    if occurrences.is_empty() {
        return Err(if stats.statements_seen == 0 {
            IngestError::EmptyLog
        } else {
            IngestError::NothingIngested {
                statements: stats.statements_seen,
            }
        });
    }

    let workload = aggregate_and_build(occurrences, schema, opts, &mut stats)?;
    Ok((workload, stats))
}

/// Combines an annotation that may sit on either transaction bracket.
fn merge_annotation(
    key: &str,
    begin: Option<String>,
    commit: Option<String>,
    line: u32,
) -> Result<Option<String>, IngestError> {
    match (begin, commit) {
        (Some(a), Some(b)) if a != b => Err(IngestError::ConflictingAnnotation {
            key: key.to_string(),
            first: a,
            second: b,
            line,
        }),
        (a, b) => Ok(a.or(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::QueryKind;

    fn schema() -> Schema {
        let mut b = Schema::builder();
        b.table("acct", &[("id", 4.0), ("owner", 16.0), ("bal", 8.0)])
            .unwrap();
        b.table("log", &[("id", 4.0), ("amount", 8.0)]).unwrap();
        b.build().unwrap()
    }

    fn opts() -> IngestOptions {
        IngestOptions::default()
    }

    fn mine(log: &str) -> Result<(Workload, MinerStats), IngestError> {
        mine_workload(log, &schema(), &[], &opts())
    }

    #[test]
    fn bare_statements_become_single_statement_txns() {
        let (w, stats) =
            mine("SELECT bal FROM acct WHERE id = 1;\nINSERT INTO log VALUES (1, 2.5);").unwrap();
        assert_eq!(w.n_txns(), 2);
        assert_eq!(w.n_queries(), 2);
        assert_eq!(stats.txn_occurrences, 2);
        assert_eq!(stats.statements_ingested, 2);
    }

    #[test]
    fn duplicate_occurrences_aggregate_into_frequency() {
        let log = "SELECT bal FROM acct WHERE id = 1;\n".repeat(5)
            + "SELECT bal FROM acct WHERE id = 99;\n"
            + "SELECT owner FROM acct WHERE id = 2;";
        let (w, stats) = mine(&log).unwrap();
        // Literals are not part of the template key: the six bal-selects
        // collapse into one template at frequency 6.
        assert_eq!(w.n_txns(), 2);
        assert_eq!(stats.txn_occurrences, 7);
        let q = w.query(vpart_model::QueryId(0));
        assert_eq!(q.frequency, 6.0);
    }

    #[test]
    fn begin_commit_groups_and_names_transactions() {
        let log = "BEGIN; -- txn=transfer\n\
                   SELECT bal FROM acct WHERE id = 1;\n\
                   UPDATE acct SET bal = bal - 10 WHERE id = 1;\n\
                   INSERT INTO log (id, amount) VALUES (1, 10);\n\
                   COMMIT;\n\
                   BEGIN;\n\
                   SELECT bal FROM acct WHERE id = 2;\n\
                   UPDATE acct SET bal = bal - 10 WHERE id = 2;\n\
                   INSERT INTO log (id, amount) VALUES (2, 10);\n\
                   COMMIT;";
        let (w, stats) = mine(log).unwrap();
        assert_eq!(w.n_txns(), 1, "identical blocks aggregate");
        assert_eq!(stats.txn_occurrences, 2);
        let t = w.txn_by_name("transfer").expect("named via annotation");
        // select + update(read+write) + insert = 4 modeled queries.
        assert_eq!(w.txn(t).queries.len(), 4);
        for &q in &w.txn(t).queries {
            assert_eq!(w.query(q).frequency, 2.0);
        }
        let upd_w = w.query_by_name("transfer/1:update_acct/write").unwrap();
        assert_eq!(w.query(upd_w).kind, QueryKind::Write);
        assert_eq!(w.query(upd_w).attrs.len(), 1);
    }

    #[test]
    fn freq_annotation_scales_occurrences() {
        let (w, _) = mine("SELECT /*+ freq=10 */ bal FROM acct WHERE id = 1;").unwrap();
        assert_eq!(w.query(vpart_model::QueryId(0)).frequency, 10.0);
    }

    #[test]
    fn freq_annotation_works_on_either_bracket() {
        let on_begin = "BEGIN; -- freq=4\nSELECT bal FROM acct WHERE id = 1;\nCOMMIT;";
        let on_commit = "BEGIN;\nSELECT bal FROM acct WHERE id = 1;\nCOMMIT; -- freq=4";
        let both = "BEGIN; -- freq=4\nSELECT bal FROM acct WHERE id = 1;\nCOMMIT; -- freq=4";
        for log in [on_begin, on_commit, both] {
            let (w, _) = mine(log).unwrap();
            assert_eq!(w.query(vpart_model::QueryId(0)).frequency, 4.0, "{log}");
        }
    }

    #[test]
    fn conflicting_bracket_annotations_are_errors() {
        let err = mine("BEGIN; -- freq=4\nSELECT bal FROM acct WHERE id = 1;\nCOMMIT; -- freq=5")
            .unwrap_err();
        assert!(
            matches!(&err, IngestError::ConflictingAnnotation { key, line: 3, .. } if key == "freq"),
            "got {err:?}"
        );
        let err = mine("BEGIN; -- txn=a\nSELECT bal FROM acct WHERE id = 1;\nCOMMIT; -- txn=b")
            .unwrap_err();
        assert!(
            matches!(&err, IngestError::ConflictingAnnotation { key, .. } if key == "txn"),
            "got {err:?}"
        );
        // Matching values on both ends are fine (covered above).
    }

    #[test]
    fn repeated_statement_within_txn_gets_multiplicity() {
        let log = "BEGIN;\n\
                   SELECT bal FROM acct WHERE id = 1;\n\
                   SELECT bal FROM acct WHERE id = 7;\n\
                   COMMIT;";
        let (w, _) = mine(log).unwrap();
        assert_eq!(w.n_queries(), 1);
        assert_eq!(w.query(vpart_model::QueryId(0)).frequency, 2.0);
    }

    #[test]
    fn rollback_discards_the_block() {
        let log = "BEGIN;\n\
                   UPDATE acct SET bal = 0 WHERE id = 1;\n\
                   ROLLBACK;\n\
                   SELECT bal FROM acct WHERE id = 1;";
        let (w, stats) = mine(log).unwrap();
        assert_eq!(w.n_txns(), 1);
        assert_eq!(stats.skipped.len(), 1);
        assert_eq!(stats.skipped[0].reason, SkipReason::RolledBack);
    }

    #[test]
    fn rolled_back_blocks_keep_the_counts_consistent() {
        let log = "BEGIN;\n\
                   UPDATE acct SET bal = 0 WHERE id = 1;\n\
                   INSERT INTO log VALUES (1, 5);\n\
                   ROLLBACK;\n\
                   SELECT bal FROM acct WHERE id = 1;";
        let (w, stats) = mine(log).unwrap();
        assert_eq!(
            stats.statements_seen, 3,
            "rolled-back statements count as seen"
        );
        assert_eq!(
            stats.statements_ingested, 1,
            "only the trailing select survives"
        );
        assert_eq!(
            stats.skipped.len(),
            2,
            "one skip entry per rolled-back statement"
        );
        assert!(stats
            .skipped
            .iter()
            .all(|s| s.reason == SkipReason::RolledBack));
        assert_eq!(w.n_txns(), 1);
        assert_eq!(stats.txn_occurrences, 1);
        // The rolled-back statements' row estimates are discarded too.
        assert_eq!(stats.row_estimates.len(), 1, "only the select's estimate");
    }

    #[test]
    fn empty_transaction_blocks_contribute_nothing() {
        let log =
            "BEGIN;\nCOMMIT;\nSELECT bal FROM acct WHERE id = 1;\nBEGIN; -- txn=noop\nCOMMIT;";
        let (w, stats) = mine(log).unwrap();
        assert_eq!(w.n_txns(), 1);
        assert_eq!(stats.txn_occurrences, 1);
        assert_eq!(stats.statements_seen, 1);
        assert!(
            w.txn_by_name("noop").is_none(),
            "empty block left no template"
        );
    }

    #[test]
    fn bracket_errors_are_typed() {
        assert_eq!(
            mine("BEGIN;\nSELECT bal FROM acct WHERE id=1;").unwrap_err(),
            IngestError::UnterminatedTransaction { line: 1 }
        );
        assert_eq!(
            mine("BEGIN;\nBEGIN;\nCOMMIT;").unwrap_err(),
            IngestError::NestedTransaction { line: 2 }
        );
        assert_eq!(
            mine("COMMIT;").unwrap_err(),
            IngestError::CommitOutsideTransaction { line: 1 }
        );
        assert_eq!(
            mine("ROLLBACK;").unwrap_err(),
            IngestError::RollbackOutsideTransaction { line: 1 }
        );
        assert_eq!(mine("").unwrap_err(), IngestError::EmptyLog);
        assert_eq!(
            mine("VACUUM;").unwrap_err(),
            IngestError::NothingIngested { statements: 1 }
        );
    }

    #[test]
    fn rows_annotation_reaches_the_model() {
        let (w, stats) = mine("SELECT /*+ rows=10 */ owner FROM acct WHERE id < 100;").unwrap();
        let q = w.query(vpart_model::QueryId(0));
        assert_eq!(q.rows_for_table(vpart_model::TableId(0)), 10.0);
        assert!(stats.row_estimates.is_empty(), "annotated, not estimated");
    }

    #[test]
    fn pk_equality_estimates_are_reported() {
        let pks = vec![vec![vpart_model::AttrId(0)], vec![]];
        let s = schema();
        let log = "SELECT owner FROM acct WHERE id = 7;\n\
                   SELECT owner FROM acct WHERE owner = 'x';";
        let (w, stats) = mine_workload(log, &s, &pks, &opts()).unwrap();
        assert_eq!(stats.row_estimates.len(), 2);
        let pk = &stats.row_estimates[0];
        assert!(pk.pk_equality);
        assert_eq!(pk.rows, 1.0);
        assert_eq!(pk.table, "acct");
        assert!(
            !stats.row_estimates[1].pk_equality,
            "non-key predicate is a guess"
        );
        let q = w.query(vpart_model::QueryId(0));
        assert_eq!(q.rows_for_table(vpart_model::TableId(0)), 1.0);
    }

    #[test]
    fn repeated_statements_report_one_estimate_entry() {
        let log = "SELECT bal FROM acct WHERE id = 1;\n".repeat(5)
            + "SELECT owner FROM acct WHERE owner = 'x';";
        let (_, stats) = mine(&log).unwrap();
        // Five identical selects aggregate into one template — and one
        // report entry, not five.
        assert_eq!(stats.row_estimates.len(), 2);
    }

    #[test]
    fn joined_statements_produce_one_query_per_table() {
        let log = "SELECT bal, amount FROM acct JOIN log ON acct.id = log.id \
                   WHERE acct.id = 3;";
        let (w, _) = mine(log).unwrap();
        assert_eq!(w.n_txns(), 1);
        assert_eq!(w.n_queries(), 2, "one read per joined table");
        let acct = w.query_by_name("txn0/0.0:select_acct").unwrap();
        let logq = w.query_by_name("txn0/0.1:select_log").unwrap();
        assert_eq!(w.query(acct).kind, QueryKind::Read);
        assert_eq!(w.query(logq).kind, QueryKind::Read);
        assert_eq!(w.txn_of(acct), w.txn_of(logq), "same transaction");
    }

    #[test]
    fn sample_rate_scales_log_frequencies_too() {
        let log = "SELECT bal FROM acct WHERE id = 1;\n".repeat(20)
            + "SELECT owner FROM acct WHERE id = 2;";
        let opts = IngestOptions::default().with_sample_rate(0.5);
        let (w, stats) = mine_workload(&log, &schema(), &[], &opts).unwrap();
        assert_eq!(w.query(vpart_model::QueryId(0)).frequency, 40.0);
        assert_eq!(stats.confidence.len(), 2);
        assert_eq!(
            stats.confidence[0].level,
            crate::report::ConfidenceLevel::Ok
        );
        assert_eq!(
            stats.confidence[1].level,
            crate::report::ConfidenceLevel::LowConfidence,
            "a single observation scaled 2x is not trustworthy"
        );
    }
}
