//! Workload frontends: pluggable readers behind one trait.
//!
//! The cost model wants aggregated workload statistics — normalized
//! statement templates with execution counts and row counts. Real
//! deployments hold that information in different shapes: raw query logs,
//! `pg_stat_statements` dumps, MySQL `performance_schema` digests. Each
//! shape is a [`WorkloadFrontend`]: it mines its input text into the same
//! `(Workload, MinerStats)` pair, and everything downstream (instance
//! validation, reporting, solving) is shared.
//!
//! Statistics dumps additionally share a normalized intermediate form: a
//! [`StatsReader`] parses its dump into [`StatsRecord`]s — `(template,
//! calls, rows, txn-group)` — and the blanket [`WorkloadFrontend`] impl
//! feeds those records through the *same* statement flattening and row
//! estimation pipeline the query-log miner uses ([`crate::stmt`]), so
//! joins, subqueries, `PRIMARY KEY` row inference and `sel=` hints inside
//! template text all behave identically across frontends.
//!
//! Sampling: every frontend scales observed frequencies by
//! `1 / sample_rate` to population estimates, and templates observed fewer
//! than [`crate::IngestOptions::confidence_min_calls`] times get a
//! [`ConfidenceLevel::LowConfidence`] entry in the report — scaling a
//! handful of sampled hits by 100× is statistics, not data.

pub(crate) mod csv;
pub mod log;
pub mod perf_schema;
pub mod pgss;

use crate::error::IngestError;
use crate::report::{ConfidenceEntry, ConfidenceLevel, RowEstimate, SkipReason, Skipped};
use crate::stmt::{parse_statement, Parsed, ParsedDml, RowBasis, StmtCtx};
use crate::IngestOptions;
use std::collections::HashMap;
use std::fmt;
use vpart_model::{AttrId, Schema, Workload};

/// Schema-side context shared by every frontend.
#[derive(Debug, Clone, Copy)]
pub struct FrontendCtx<'a> {
    /// The schema statements resolve against.
    pub schema: &'a Schema,
    /// Per-table primary-key attribute sets (empty entries when the DDL
    /// declared none). Drives `WHERE pk = ?` row estimation.
    pub primary_keys: &'a [Vec<AttrId>],
    /// Ingestion knobs (strictness, fallbacks, sampling).
    pub opts: &'a IngestOptions,
}

/// A workload frontend: one input shape, mined into the shared workload
/// representation.
pub trait WorkloadFrontend {
    /// Short name for diagnostics (`query-log`, `pgss-csv`, ...).
    fn name(&self) -> &'static str;

    /// Mines frontend-specific input text into a workload plus its
    /// diagnostics.
    fn mine(
        &self,
        input: &str,
        ctx: &FrontendCtx<'_>,
    ) -> Result<(Workload, MinerStats), IngestError>;
}

/// The statistics-dump formats `vpart` can read (`--stats-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// `pg_stat_statements` exported as CSV (`COPY ... TO ... CSV HEADER`
    /// or `psql --csv`): `query`, `calls`, optional `rows` columns.
    PgssCsv,
    /// `pg_stat_statements` exported as a JSON array of row objects.
    PgssJson,
    /// MySQL `performance_schema.events_statements_summary_by_digest`
    /// exported as CSV/TSV: `DIGEST_TEXT`, `COUNT_STAR`, optional
    /// `SUM_ROWS_EXAMINED` / `SUM_ROWS_SENT`.
    PerfSchema,
}

impl StatsFormat {
    /// Every supported format, for usage text.
    pub const ALL: [StatsFormat; 3] = [Self::PgssCsv, Self::PgssJson, Self::PerfSchema];

    /// Parses a `--stats-format` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pgss-csv" => Some(Self::PgssCsv),
            "pgss-json" => Some(Self::PgssJson),
            "perf-schema" => Some(Self::PerfSchema),
            _ => None,
        }
    }

    /// The frontend implementing this format.
    pub fn frontend(self) -> &'static dyn WorkloadFrontend {
        match self {
            Self::PgssCsv => &pgss::PgssCsv,
            Self::PgssJson => &pgss::PgssJson,
            Self::PerfSchema => &perf_schema::PerfSchema,
        }
    }
}

impl fmt::Display for StatsFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::PgssCsv => "pgss-csv",
            Self::PgssJson => "pgss-json",
            Self::PerfSchema => "perf-schema",
        })
    }
}

/// One normalized statistics record: a statement template with its
/// aggregate counters — the shape `pg_stat_statements` and
/// `performance_schema` both export, and the common currency between
/// [`StatsReader`]s and the shared assembly pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsRecord {
    /// Normalized SQL template text (`?` / `$n` placeholders both lex as
    /// parameters; `/*+ rows=… sel=… */` hints inside the text still
    /// apply).
    pub template: String,
    /// Observed execution count (`calls` / `COUNT_STAR`).
    pub calls: f64,
    /// Average rows touched *per call*, when the source measures it;
    /// `None` falls back to the annotation / primary-key / default
    /// estimation pipeline.
    pub rows: Option<f64>,
    /// Transaction-group label: records sharing a label form one
    /// transaction template (the optional `txn` dump column); `None`
    /// makes the record its own single-statement transaction.
    pub group: Option<String>,
    /// 1-based source line of the dump row (element index for JSON).
    pub line: u32,
}

/// A parsed statistics dump: usable records plus row-level skips.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordBatch {
    /// The usable records, in dump order.
    pub records: Vec<StatsRecord>,
    /// Dump rows that were skipped (lenient mode).
    pub skipped: Vec<Skipped>,
    /// Total data rows seen (records + skipped).
    pub rows_seen: usize,
}

impl RecordBatch {
    /// Records a skipped dump row.
    pub(crate) fn skip(&mut self, line: u32, reason: SkipReason, snippet: &str) {
        self.skipped.push(Skipped {
            line,
            reason,
            snippet: compact(snippet),
        });
    }
}

/// A statistics-dump reader: parses one dump format into normalized
/// [`StatsRecord`]s. Every reader is a [`WorkloadFrontend`] via the
/// blanket impl, which routes the records through the shared statement
/// pipeline.
pub trait StatsReader {
    /// The `--stats-format` name of this reader.
    fn format_name(&self) -> &'static str;

    /// Parses dump text into records (plus per-row skips in lenient mode).
    fn records(&self, input: &str, opts: &IngestOptions) -> Result<RecordBatch, IngestError>;
}

impl<T: StatsReader> WorkloadFrontend for T {
    fn name(&self) -> &'static str {
        self.format_name()
    }

    fn mine(
        &self,
        input: &str,
        ctx: &FrontendCtx<'_>,
    ) -> Result<(Workload, MinerStats), IngestError> {
        assemble(self.records(input, ctx.opts)?, ctx)
    }
}

/// Mining statistics feeding the ingest report (shared by all frontends).
#[derive(Debug, Clone, Default)]
pub struct MinerStats {
    /// Statements seen in the input (transaction brackets excluded; one
    /// per data row for statistics dumps).
    pub statements_seen: usize,
    /// Statements that contributed workload.
    pub statements_ingested: usize,
    /// Transaction occurrences observed before aggregation (sum of
    /// observed, unscaled execution counts for statistics dumps).
    pub txn_occurrences: usize,
    /// Skipped statements.
    pub skipped: Vec<Skipped>,
    /// Row counts that were estimated rather than annotated.
    pub row_estimates: Vec<RowEstimate>,
    /// Per-template sampling confidence (populated when sampling).
    pub confidence: Vec<ConfidenceEntry>,
}

/// A statement inside a transaction template with its per-execution
/// multiplicity (> 1 when the statement repeats within one transaction).
#[derive(Debug, Clone)]
pub(crate) struct TemplateStmt {
    pub(crate) dml: ParsedDml,
    pub(crate) mult: f64,
}

/// One observed transaction before aggregation.
pub(crate) struct Occurrence {
    pub(crate) name: Option<String>,
    pub(crate) stmts: Vec<TemplateStmt>,
    /// Observed (unscaled) executions this occurrence stands for.
    pub(crate) weight: f64,
}

/// An aggregated transaction template.
struct Template {
    name: Option<String>,
    stmts: Vec<TemplateStmt>,
    /// Total observed executions (sum of occurrence weights).
    weight: f64,
}

/// Structural identity of one table access, for aggregation.
type AccessKey = (u32, Vec<u32>, Vec<u32>, u64);

/// Structural identity of a statement, for aggregation.
type StmtKey = (crate::stmt::StmtKind, Vec<AccessKey>, u64);

fn stmt_key(s: &TemplateStmt) -> StmtKey {
    (
        s.dml.kind,
        s.dml
            .accesses
            .iter()
            .map(|a| {
                (
                    a.table.0,
                    a.read.iter().map(|x| x.0).collect(),
                    a.write.iter().map(|x| x.0).collect(),
                    a.rows.to_bits(),
                )
            })
            .collect(),
        (s.dml.freq * s.mult).to_bits(),
    )
}

fn occurrence_key(o: &Occurrence) -> Vec<StmtKey> {
    o.stmts.iter().map(stmt_key).collect()
}

/// Folds one statement into an occurrence's list: a structurally
/// identical statement accumulates `mult`, a new one is appended. The
/// structural identity (kind + accesses) is the single definition both
/// the log and stats frontends share.
pub(crate) fn merge_stmt(stmts: &mut Vec<TemplateStmt>, dml: ParsedDml, mult: f64) {
    if let Some(prev) = stmts
        .iter_mut()
        .find(|t| t.dml.kind == dml.kind && t.dml.accesses == dml.accesses)
    {
        prev.mult += mult;
    } else {
        stmts.push(TemplateStmt { dml, mult });
    }
}

/// Merges duplicate statements within one occurrence into multiplicities.
pub(crate) fn coalesce(stmts: Vec<ParsedDml>) -> Vec<TemplateStmt> {
    let mut out: Vec<TemplateStmt> = Vec::new();
    for mut dml in stmts {
        let mult = std::mem::replace(&mut dml.freq, 1.0); // folded into mult
        merge_stmt(&mut out, dml, mult);
    }
    out
}

/// Report entries for every estimated (non-annotated) row count of `dml`,
/// anchored at `line` / `snippet`.
pub(crate) fn access_estimates(
    dml: &ParsedDml,
    line: u32,
    snippet: &str,
    schema: &Schema,
) -> Vec<RowEstimate> {
    dml.accesses
        .iter()
        .filter(|a| matches!(a.basis, RowBasis::PkEquality | RowBasis::Default))
        .map(|a| RowEstimate {
            line,
            table: schema.tables()[a.table.index()].name.clone(),
            rows: a.rows,
            pk_equality: a.basis == RowBasis::PkEquality,
            snippet: snippet.to_string(),
        })
        .collect()
}

/// Deduplicates row-estimate report entries: identical statements
/// aggregate into one template, so their (identical) estimates must
/// aggregate into one report entry too, or the report grows with the raw
/// input instead of the template count.
#[derive(Default)]
pub(crate) struct EstimateDedup {
    seen: std::collections::HashSet<(String, u64, bool, String)>,
}

impl EstimateDedup {
    pub(crate) fn commit(&mut self, stats: &mut MinerStats, estimates: Vec<RowEstimate>) {
        for e in estimates {
            let key = (
                e.table.clone(),
                e.rows.to_bits(),
                e.pk_equality,
                e.snippet.clone(),
            );
            if self.seen.insert(key) {
                stats.row_estimates.push(e);
            }
        }
    }
}

/// Aggregates occurrences into templates, applies sampling scale and
/// confidence thresholds, and builds the workload — the shared tail of
/// every frontend. One modeled query per table access; read+write
/// accesses (UPDATE targets) split per the paper's §5.2.
pub(crate) fn aggregate_and_build(
    occurrences: Vec<Occurrence>,
    schema: &Schema,
    opts: &IngestOptions,
    stats: &mut MinerStats,
) -> Result<Workload, IngestError> {
    let mut templates: Vec<Template> = Vec::new();
    let mut index: HashMap<Vec<StmtKey>, usize> = HashMap::new();
    for occ in occurrences {
        match index.entry(occurrence_key(&occ)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let t = &mut templates[*e.get()];
                t.weight += occ.weight;
                if t.name.is_none() {
                    t.name = occ.name;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(templates.len());
                templates.push(Template {
                    name: occ.name,
                    stmts: occ.stmts,
                    weight: occ.weight,
                });
            }
        }
    }

    // Sampled input: scale observed counts up to population estimates.
    let scale = 1.0 / opts.sample_rate;
    let sampled = opts.sample_rate < 1.0;

    let mut wb = Workload::builder(schema);
    let mut used_names: HashMap<String, usize> = HashMap::new();
    for (i, tpl) in templates.iter().enumerate() {
        let base = tpl.name.clone().unwrap_or_else(|| format!("txn{i}"));
        let n = used_names.entry(base.clone()).or_insert(0);
        *n += 1;
        let txn_name = if *n == 1 { base } else { format!("{base}#{n}") };
        if sampled {
            // A statement executing `weight × mult` times can be backed by
            // fewer observations than the template itself (stats groups
            // carry per-member counts as mult < 1); the flag follows the
            // weakest statement, not the template total.
            let min_observed = tpl
                .stmts
                .iter()
                .map(|ts| tpl.weight * ts.mult)
                .fold(tpl.weight, f64::min);
            stats.confidence.push(ConfidenceEntry {
                txn: txn_name.clone(),
                observed: tpl.weight,
                scaled: tpl.weight * scale,
                level: if min_observed < opts.confidence_min_calls {
                    ConfidenceLevel::LowConfidence
                } else {
                    ConfidenceLevel::Ok
                },
            });
        }
        let mut qids = Vec::new();
        for (j, ts) in tpl.stmts.iter().enumerate() {
            let d = &ts.dml;
            let freq = tpl.weight * scale * ts.mult;
            for (k, a) in d.accesses.iter().enumerate() {
                let table_name = schema.tables()[a.table.index()].name.to_ascii_lowercase();
                // Single-access statements keep the `txn/j:verb_table`
                // form; flattened ones append the access index.
                let qname = if d.accesses.len() == 1 {
                    format!("{txn_name}/{j}:{}_{}", d.kind.verb(), table_name)
                } else {
                    format!("{txn_name}/{j}.{k}:{}_{}", d.kind.verb(), table_name)
                };
                if !a.read.is_empty() && !a.write.is_empty() {
                    let (r, w) =
                        wb.add_update(&qname, freq, &a.read, &a.write, &[(a.table, a.rows)])?;
                    qids.push(r);
                    qids.push(w);
                } else if a.write.is_empty() {
                    let spec = vpart_model::workload::QuerySpec::read(&qname)
                        .access(&a.read)
                        .frequency(freq)
                        .default_rows(a.rows);
                    qids.push(wb.add_query(spec)?);
                } else {
                    let spec = vpart_model::workload::QuerySpec::write(&qname)
                        .access(&a.write)
                        .frequency(freq)
                        .default_rows(a.rows);
                    qids.push(wb.add_query(spec)?);
                }
            }
        }
        wb.transaction(&txn_name, &qids)?;
    }
    Ok(wb.build()?)
}

// ------------------------------------------------- stats-record assembly

/// One merged record plus how many dump rows collapsed into it.
struct MergedRecord {
    rec: StatsRecord,
    dup: usize,
}

/// Compacts dump text into a one-line diagnostic snippet.
pub(crate) fn compact(text: &str) -> String {
    const MAX: usize = 60;
    let raw: String = text.split_whitespace().collect::<Vec<_>>().join(" ");
    if raw.len() <= MAX {
        raw
    } else {
        let mut cut = MAX;
        while !raw.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &raw[..cut])
    }
}

/// Rewrites the line carried by a statement-level error to the dump row's
/// line: templates are parsed as standalone one-line texts, so their
/// internal line numbers are meaningless to the user.
fn at_line(e: IngestError, line: u32) -> IngestError {
    use IngestError::*;
    match e {
        UnterminatedString { .. } => UnterminatedString { line },
        UnterminatedComment { .. } => UnterminatedComment { line },
        UnterminatedStatement { .. } => UnterminatedStatement { line },
        Syntax {
            expected, found, ..
        } => Syntax {
            line,
            expected,
            found,
        },
        UnknownTable { name, .. } => UnknownTable { name, line },
        UnknownColumn { table, column, .. } => UnknownColumn {
            table,
            column,
            line,
        },
        AmbiguousColumn { column, tables, .. } => AmbiguousColumn {
            column,
            tables,
            line,
        },
        Unflattenable { .. } => Unflattenable { line },
        other => other,
    }
}

/// Runs normalized statistics records through the shared statement
/// pipeline: parse each template (flattening joins/subqueries, estimating
/// rows), group records by their `txn` label, aggregate and build.
pub(crate) fn assemble(
    batch: RecordBatch,
    ctx: &FrontendCtx<'_>,
) -> Result<(Workload, MinerStats), IngestError> {
    let opts = ctx.opts;
    let mut stats = MinerStats {
        statements_seen: batch.rows_seen,
        skipped: batch.skipped,
        ..MinerStats::default()
    };

    // Identical (template, group) rows merge first — pg_stat_statements
    // keeps one row per (userid, dbid, query), so the same template can
    // legitimately appear several times. Calls sum; rows average,
    // call-weighted.
    let mut merged: Vec<MergedRecord> = Vec::new();
    let mut index: HashMap<(String, Option<String>), usize> = HashMap::new();
    for r in batch.records {
        match index.entry((r.template.clone(), r.group.clone())) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let m = &mut merged[*e.get()];
                m.rec.rows = match (m.rec.rows, r.rows) {
                    (Some(a), Some(b)) => {
                        Some((a * m.rec.calls + b * r.calls) / (m.rec.calls + r.calls))
                    }
                    (a, b) => a.or(b),
                };
                m.rec.calls += r.calls;
                m.dup += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(merged.len());
                merged.push(MergedRecord { rec: r, dup: 1 });
            }
        }
    }

    let sctx = StmtCtx {
        schema: ctx.schema,
        pks: ctx.primary_keys,
        strict: opts.strict,
        default_rows: opts.default_rows,
    };
    let mut estimates = EstimateDedup::default();

    // Group membership: records sharing a `txn` label form one
    // transaction occurrence, in dump order; unlabeled records stand
    // alone. Each group member keeps its own calls.
    struct Member {
        calls: f64,
        stmts: Vec<ParsedDml>,
        estimates: Vec<RowEstimate>,
        dup: usize,
    }
    let mut groups: Vec<(Option<String>, Vec<Member>)> = Vec::new();
    let mut group_index: HashMap<String, usize> = HashMap::new();

    for m in merged {
        let r = &m.rec;
        let snippet = compact(&r.template);
        let mut text = r.template.trim().to_string();
        if text.is_empty() {
            let e = IngestError::Syntax {
                line: r.line,
                expected: "a SQL statement template".to_string(),
                found: "empty query text".to_string(),
            };
            if opts.strict {
                return Err(e);
            }
            stats.skip_record(r.line, SkipReason::Unparsable, &snippet);
            continue;
        }
        if !text.ends_with(';') {
            text.push(';');
        }
        let raws = match crate::lexer::split_statements(&text) {
            Ok(raws) => raws,
            Err(e) if opts.strict => return Err(at_line(e, r.line)),
            Err(_) => {
                stats.skip_record(r.line, SkipReason::Unparsable, &snippet);
                continue;
            }
        };
        let mut member = Member {
            calls: r.calls,
            stmts: Vec::new(),
            estimates: Vec::new(),
            dup: m.dup,
        };
        for mut raw in raws {
            // The dump's counters are authoritative: drop any freq=/txn=
            // hints baked into the template text, and let a measured
            // per-call row count override a textual rows= hint. rows=/sel=
            // hints survive when the dump carries no measurement.
            raw.annotations
                .retain(|a| a.key != "freq" && a.key != "txn");
            if let Some(rows) = r.rows {
                raw.annotations.retain(|a| a.key != "rows");
                raw.annotations.push(crate::lexer::Annotation {
                    key: "rows".to_string(),
                    value: format!("{rows}"),
                    line: raw.line,
                });
            }
            match parse_statement(&raw, &sctx).map_err(|e| at_line(e, r.line))? {
                Parsed::Dml(mut dml) => {
                    member
                        .estimates
                        .extend(access_estimates(&dml, r.line, &snippet, ctx.schema));
                    dml.freq = 1.0;
                    member.stmts.push(dml);
                }
                Parsed::Begin | Parsed::Commit | Parsed::Rollback => {
                    stats.skip_record(r.line, SkipReason::TxnControl, &snippet);
                }
                Parsed::Skip(reason) => {
                    stats.skip_record(r.line, reason, &snippet);
                }
            }
        }
        if member.stmts.is_empty() {
            continue;
        }
        match &r.group {
            Some(label) => match group_index.entry(label.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    groups[*e.get()].1.push(member);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push((Some(label.clone()), vec![member]));
                }
            },
            None => groups.push((None, vec![member])),
        }
    }

    // Each group becomes one occurrence: its weight is the largest member
    // count, and members execute `calls / weight` times per occurrence —
    // per-statement frequencies (`weight × mult`) stay exactly the
    // observed counts.
    let mut occurrences: Vec<Occurrence> = Vec::new();
    for (name, members) in groups {
        let weight = members.iter().map(|m| m.calls).fold(f64::MIN, f64::max);
        let mut stmts: Vec<TemplateStmt> = Vec::new();
        for member in members {
            stats.statements_ingested += member.dup;
            estimates.commit(&mut stats, member.estimates);
            let mult = member.calls / weight;
            for dml in member.stmts {
                merge_stmt(&mut stmts, dml, mult);
            }
        }
        stats.txn_occurrences = stats
            .txn_occurrences
            .saturating_add(weight.round() as usize);
        occurrences.push(Occurrence {
            name,
            stmts,
            weight,
        });
    }

    if occurrences.is_empty() {
        return Err(if stats.statements_seen == 0 {
            IngestError::EmptyStats
        } else {
            IngestError::NothingIngested {
                statements: stats.statements_seen,
            }
        });
    }

    let workload = aggregate_and_build(occurrences, ctx.schema, opts, &mut stats)?;
    Ok((workload, stats))
}

impl MinerStats {
    /// Records a skipped statistics record.
    fn skip_record(&mut self, line: u32, reason: SkipReason, snippet: &str) {
        self.skipped.push(Skipped {
            line,
            reason,
            snippet: snippet.to_string(),
        });
    }
}

/// Parses a `calls`-like numeric field: finite and non-negative.
pub(crate) fn parse_count(value: &str, column: &str, line: u32) -> Result<f64, IngestError> {
    match value.trim().parse::<f64>() {
        Ok(x) if x.is_finite() && x >= 0.0 => Ok(x),
        _ => Err(IngestError::StatsNumber {
            line,
            column: column.to_string(),
            value: value.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut b = Schema::builder();
        b.table("acct", &[("id", 4.0), ("owner", 16.0), ("bal", 8.0)])
            .unwrap();
        b.build().unwrap()
    }

    fn record(template: &str, calls: f64, rows: Option<f64>, group: Option<&str>) -> StatsRecord {
        StatsRecord {
            template: template.to_string(),
            calls,
            rows,
            group: group.map(str::to_string),
            line: 1,
        }
    }

    fn run(
        records: Vec<StatsRecord>,
        opts: &IngestOptions,
    ) -> Result<(Workload, MinerStats), IngestError> {
        let schema = schema();
        let batch = RecordBatch {
            rows_seen: records.len(),
            records,
            skipped: Vec::new(),
        };
        let ctx = FrontendCtx {
            schema: &schema,
            primary_keys: &[],
            opts,
        };
        assemble(batch, &ctx)
    }

    #[test]
    fn records_become_weighted_single_statement_txns() {
        let (w, stats) = run(
            vec![
                record("SELECT bal FROM acct WHERE id = $1", 120.0, Some(1.0), None),
                record(
                    "UPDATE acct SET bal = bal - $1 WHERE id = $2",
                    40.0,
                    None,
                    None,
                ),
            ],
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(w.n_txns(), 2);
        assert_eq!(w.query(vpart_model::QueryId(0)).frequency, 120.0);
        assert_eq!(stats.statements_ingested, 2);
        assert_eq!(stats.txn_occurrences, 160);
        // The measured per-call row count is authoritative → no estimate
        // entry for the select; the update still estimates.
        assert!(stats.row_estimates.iter().all(|e| e.table == "acct"));
        assert_eq!(stats.row_estimates.len(), 1);
    }

    #[test]
    fn duplicate_templates_merge_calls_and_average_rows() {
        let (w, stats) = run(
            vec![
                record("SELECT bal FROM acct WHERE id = $1", 10.0, Some(1.0), None),
                record("SELECT bal FROM acct WHERE id = $1", 30.0, Some(5.0), None),
            ],
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(w.n_txns(), 1);
        let q = w.query(vpart_model::QueryId(0));
        assert_eq!(q.frequency, 40.0);
        // 10×1 + 30×5 over 40 calls = 4 rows/call.
        assert_eq!(q.rows_for_table(vpart_model::TableId(0)), 4.0);
        assert_eq!(stats.statements_ingested, 2);
    }

    #[test]
    fn group_labels_form_multi_statement_transactions() {
        let (w, _) = run(
            vec![
                record(
                    "SELECT bal FROM acct WHERE id = $1",
                    8.0,
                    None,
                    Some("xfer"),
                ),
                record(
                    "UPDATE acct SET bal = bal - $1 WHERE id = $2",
                    8.0,
                    None,
                    Some("xfer"),
                ),
            ],
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(w.n_txns(), 1);
        let t = w.txn_by_name("xfer").expect("named by group label");
        // select + update(read+write) = 3 modeled queries.
        assert_eq!(w.txn(t).queries.len(), 3);
        for &q in &w.txn(t).queries {
            assert_eq!(w.query(q).frequency, 8.0);
        }
    }

    #[test]
    fn sampling_scales_frequencies_and_flags_rare_templates() {
        let opts = IngestOptions::default().with_sample_rate(0.1);
        let (w, stats) = run(
            vec![
                record("SELECT bal FROM acct WHERE id = $1", 50.0, None, None),
                record("DELETE FROM acct WHERE id = $1", 2.0, None, None),
            ],
            &opts,
        )
        .unwrap();
        assert_eq!(w.query(vpart_model::QueryId(0)).frequency, 500.0);
        assert_eq!(stats.confidence.len(), 2);
        assert_eq!(stats.confidence[0].level, ConfidenceLevel::Ok);
        assert_eq!(stats.confidence[0].observed, 50.0);
        assert_eq!(stats.confidence[0].scaled, 500.0);
        assert_eq!(stats.confidence[1].level, ConfidenceLevel::LowConfidence);
    }

    #[test]
    fn rare_member_of_a_hot_group_is_still_low_confidence() {
        // The group executes 1000 times, but its UPDATE was observed
        // twice: the scaled UPDATE frequency rests on 2 observations, so
        // the template is flagged regardless of the group total.
        let opts = IngestOptions::default().with_sample_rate(0.1);
        let (_, stats) = run(
            vec![
                record(
                    "SELECT bal FROM acct WHERE id = $1",
                    1000.0,
                    None,
                    Some("hot"),
                ),
                record(
                    "UPDATE acct SET bal = $1 WHERE id = $2",
                    2.0,
                    None,
                    Some("hot"),
                ),
            ],
            &opts,
        )
        .unwrap();
        assert_eq!(stats.confidence.len(), 1);
        assert_eq!(stats.confidence[0].observed, 1000.0);
        assert_eq!(
            stats.confidence[0].level,
            ConfidenceLevel::LowConfidence,
            "weakest member drives the flag"
        );
    }

    #[test]
    fn txn_control_and_unparsable_templates_are_skipped_leniently() {
        let opts = IngestOptions::default().lenient();
        let (w, stats) = run(
            vec![
                record("BEGIN", 100.0, None, None),
                record("SELECT bal FROM acct WHERE id = $1", 10.0, None, None),
                record("SELECT oops syntax ...", 5.0, None, None),
            ],
            &opts,
        )
        .unwrap();
        assert_eq!(w.n_txns(), 1);
        assert_eq!(stats.skipped.len(), 2);
        assert_eq!(stats.skipped[0].reason, SkipReason::TxnControl);
        assert_eq!(stats.skipped[1].reason, SkipReason::Unparsable);
    }

    #[test]
    fn strict_mode_propagates_template_errors_with_dump_lines() {
        let mut rec = record("SELECT nope FROM acct", 3.0, None, None);
        rec.line = 42;
        let err = run(vec![rec], &IngestOptions::default()).unwrap_err();
        assert_eq!(
            err,
            IngestError::UnknownColumn {
                table: "acct".into(),
                column: "nope".into(),
                line: 42
            }
        );
    }
}
