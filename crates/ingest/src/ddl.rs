//! `CREATE TABLE` parsing and SQL-type → attribute-width mapping.
//!
//! Widths follow the "natural binary width" convention the TPC-C model in
//! `vpart_instances` uses: fixed-point numerics take the width of the
//! smallest machine integer that holds their precision, character types
//! take their declared maximum, and unbounded types (`TEXT`, `BLOB`, ...)
//! fall back to [`crate::IngestOptions::text_width`] with a diagnostic —
//! the cost model needs *some* `w_a`, but the guess must stay visible.
//!
//! `PRIMARY KEY` declarations (column-level or table-level) are kept in
//! [`ParsedSchema::primary_keys`] so the log miner can infer `rows = 1`
//! for full-key equality predicates; all other constraints are accepted
//! and ignored.

use crate::error::IngestError;
use crate::lexer::{RawStatement, Tok};
use crate::report::{SkipReason, Skipped, WidthFallback};
use crate::IngestOptions;
use vpart_model::{AttrId, Schema, TableId};

/// Column-list keywords that start a table constraint, not a column.
const CONSTRAINT_HEADS: &[&str] = &[
    "PRIMARY",
    "FOREIGN",
    "UNIQUE",
    "CHECK",
    "CONSTRAINT",
    "KEY",
    "INDEX",
    "EXCLUDE",
];

/// Result of parsing a schema file.
#[derive(Debug)]
pub struct ParsedSchema {
    /// The assembled schema.
    pub schema: Schema,
    /// Per-table primary-key attributes (indexed by [`TableId`]; empty for
    /// tables that declared none). Drives `WHERE pk = ?` row estimation.
    pub primary_keys: Vec<Vec<AttrId>>,
    /// Types that needed the fallback width.
    pub width_fallbacks: Vec<WidthFallback>,
    /// Non-`CREATE TABLE` statements that were skipped.
    pub skipped: Vec<Skipped>,
}

/// Parses DDL text into a [`Schema`].
pub fn parse_schema(sql: &str, opts: &IngestOptions) -> Result<ParsedSchema, IngestError> {
    let statements = crate::lexer::split_statements(sql)?;
    let mut builder = Schema::builder();
    let mut width_fallbacks = Vec::new();
    let mut skipped = Vec::new();
    let mut names: Vec<String> = Vec::new();
    // Per-table (pk column name, line of the declaration) lists; resolved
    // to attribute ids once the schema is built.
    let mut pk_names: Vec<Vec<(String, u32)>> = Vec::new();
    let mut any_table = false;

    for stmt in &statements {
        let is_create_table = stmt.head().as_deref() == Some("CREATE")
            && stmt.tokens.get(1).is_some_and(|t| t.tok.is_kw("TABLE"));
        if !is_create_table {
            skipped.push(Skipped {
                line: stmt.line,
                reason: SkipReason::NotADmlStatement,
                snippet: stmt.snippet.clone(),
            });
            continue;
        }
        let table = parse_create_table(stmt, opts, &mut width_fallbacks)?;
        if names.iter().any(|n| n.eq_ignore_ascii_case(&table.name)) {
            return Err(IngestError::DuplicateTable {
                name: table.name,
                line: stmt.line,
            });
        }
        names.push(table.name.clone());
        let cols: Vec<(&str, f64)> = table
            .columns
            .iter()
            .map(|(n, w)| (n.as_str(), *w))
            .collect();
        builder.table(&table.name, &cols)?;
        pk_names.push(table.pk);
        any_table = true;
    }
    if !any_table {
        return Err(IngestError::EmptySchema);
    }
    let schema = builder.build()?;
    let mut primary_keys = Vec::with_capacity(pk_names.len());
    for (t, cols) in pk_names.into_iter().enumerate() {
        let table = TableId::from_index(t);
        let mut pk = Vec::with_capacity(cols.len());
        for (col, line) in cols {
            let a = crate::stmt::table_attr(&schema, table, &col).ok_or_else(|| {
                IngestError::UnknownColumn {
                    table: schema.tables()[t].name.clone(),
                    column: col,
                    line,
                }
            })?;
            pk.push(a);
        }
        pk.sort_unstable();
        pk.dedup();
        primary_keys.push(pk);
    }
    Ok(ParsedSchema {
        schema,
        primary_keys,
        width_fallbacks,
        skipped,
    })
}

struct TableDef {
    name: String,
    columns: Vec<(String, f64)>,
    /// `PRIMARY KEY` column names with their declaration lines.
    pk: Vec<(String, u32)>,
}

fn parse_create_table(
    stmt: &RawStatement,
    opts: &IngestOptions,
    fallbacks: &mut Vec<WidthFallback>,
) -> Result<TableDef, IngestError> {
    let toks = &stmt.tokens;
    let mut i = 2; // past CREATE TABLE
                   // Optional IF NOT EXISTS.
    if toks.get(i).is_some_and(|t| t.tok.is_kw("IF")) {
        i += 3;
    }
    let Some(Tok::Ident(name)) = toks.get(i).map(|t| &t.tok) else {
        return Err(syntax(stmt, i, "a table name"));
    };
    let name = name.clone();
    i += 1;
    if !matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return Err(syntax(stmt, i, "`(` opening the column list"));
    }
    i += 1;

    let mut columns: Vec<(String, f64)> = Vec::new();
    let mut pk: Vec<(String, u32)> = Vec::new();
    loop {
        let Some(tok) = toks.get(i) else {
            return Err(syntax(stmt, i, "a column definition or `)`"));
        };
        if matches!(tok.tok, Tok::Punct(')')) {
            break;
        }
        let head = tok.tok.keyword().unwrap_or_default();
        if CONSTRAINT_HEADS.contains(&head.as_str()) {
            // `[CONSTRAINT name] PRIMARY KEY (col, ...)` names the key
            // columns; every other table constraint is skipped whole.
            let pk_head = if head == "PRIMARY" {
                Some(i)
            } else if head == "CONSTRAINT" {
                // CONSTRAINT <name> PRIMARY ...
                (toks.get(i + 2).map(|t| &t.tok))
                    .and_then(Tok::keyword)
                    .filter(|k| k == "PRIMARY")
                    .map(|_| i + 2)
            } else {
                None
            };
            if let Some(p) = pk_head {
                // The key's `(col, ...)` group, if present within this item.
                let mut open = None;
                for (j, t) in toks.iter().enumerate().skip(p) {
                    match t.tok {
                        Tok::Punct('(') => {
                            open = Some(j);
                            break;
                        }
                        Tok::Punct(',') | Tok::Punct(')') => break,
                        _ => {}
                    }
                }
                if let Some(open) = open {
                    let close = skip_group(toks, open, stmt)?;
                    pk.clear(); // a table-level key supersedes column-level ones
                    for t in &toks[open + 1..close] {
                        if let Tok::Ident(col) = &t.tok {
                            // Sort/null qualifiers are not key columns.
                            if matches!(
                                col.to_ascii_uppercase().as_str(),
                                "ASC" | "DESC" | "NULLS" | "FIRST" | "LAST" | "AUTOINCREMENT"
                            ) {
                                continue;
                            }
                            pk.push((col.clone(), t.line));
                        }
                    }
                }
            }
            i = skip_to_item_end(toks, i, stmt)?;
            continue;
        }
        let Tok::Ident(col) = &tok.tok else {
            return Err(syntax(stmt, i, "a column name"));
        };
        let col = col.clone();
        i += 1;
        // Type: one or two identifier words plus optional (args).
        let Some(Tok::Ident(ty0)) = toks.get(i).map(|t| &t.tok) else {
            return Err(syntax(stmt, i, &format!("a type for column {col:?}")));
        };
        let mut type_name = ty0.to_ascii_uppercase();
        i += 1;
        if let Some(Tok::Ident(ty1)) = toks.get(i).map(|t| &t.tok) {
            // Two-word types: DOUBLE PRECISION, CHARACTER VARYING.
            let up = ty1.to_ascii_uppercase();
            if matches!(
                (type_name.as_str(), up.as_str()),
                ("DOUBLE", "PRECISION") | ("CHARACTER", "VARYING")
            ) {
                type_name = format!("{type_name} {up}");
                i += 1;
            }
        }
        let mut args: Vec<u64> = Vec::new();
        if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('('))) {
            let close = skip_group(toks, i, stmt)?;
            for t in &toks[i + 1..close] {
                if let Tok::Number(n) = &t.tok {
                    if let Ok(v) = n.parse::<u64>() {
                        args.push(v);
                    }
                }
            }
            i = close + 1;
        }
        let (width, is_fallback) = width_for_type(&type_name, &args, opts);
        if is_fallback {
            fallbacks.push(WidthFallback {
                table: name.clone(),
                column: col.clone(),
                sql_type: type_name.clone(),
                width,
            });
        }
        // Column constraints (NOT NULL, DEFAULT ..., PRIMARY KEY, ...);
        // a `PRIMARY KEY` in the tail marks this column as the key.
        let tail_end = skip_to_item_end(toks, i, stmt)?;
        let item_end = tail_end.min(toks.len());
        let mut depth = 0usize;
        for j in i..item_end {
            match toks[j].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => depth = depth.saturating_sub(1),
                _ => {
                    if depth == 0
                        && toks[j].tok.is_kw("PRIMARY")
                        && toks.get(j + 1).is_some_and(|t| t.tok.is_kw("KEY"))
                    {
                        pk.push((col.clone(), toks[j].line));
                    }
                }
            }
        }
        columns.push((col, width));
        i = tail_end;
    }
    Ok(TableDef { name, columns, pk })
}

/// Advances past the current column-list item: to just after the next
/// top-level `,`, or to the closing `)` of the list. An unbalanced `(`
/// inside the item is a syntax error (nothing to resynchronize on).
fn skip_to_item_end(
    toks: &[crate::lexer::Token],
    mut i: usize,
    stmt: &RawStatement,
) -> Result<usize, IngestError> {
    let mut depth = 0usize;
    let mut last_open = i;
    while let Some(t) = toks.get(i) {
        match t.tok {
            Tok::Punct('(') => {
                depth += 1;
                last_open = i;
            }
            Tok::Punct(')') if depth == 0 => return Ok(i),
            Tok::Punct(')') => depth -= 1,
            Tok::Punct(',') if depth == 0 => return Ok(i + 1),
            _ => {}
        }
        i += 1;
    }
    if depth > 0 {
        return Err(syntax(
            stmt,
            toks.len(),
            &format!("a `)` matching the `(` on line {}", toks[last_open].line),
        ));
    }
    Ok(i)
}

/// Given `toks[i] == '('`, returns the index of the matching `)`; an
/// unbalanced group is a syntax error.
fn skip_group(
    toks: &[crate::lexer::Token],
    i: usize,
    stmt: &RawStatement,
) -> Result<usize, IngestError> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(i) {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Ok(j);
                }
            }
            _ => {}
        }
    }
    Err(syntax(
        stmt,
        toks.len(),
        &format!("a `)` matching the `(` on line {}", toks[i].line),
    ))
}

fn syntax(stmt: &RawStatement, i: usize, expected: &str) -> IngestError {
    let (line, found) = match stmt.tokens.get(i) {
        Some(t) => (t.line, format!("{:?}", t.tok)),
        None => (stmt.line, "end of statement".to_string()),
    };
    IngestError::Syntax {
        line,
        expected: expected.to_string(),
        found,
    }
}

/// Maps an uppercased SQL type (plus type arguments) to an average width
/// in bytes. The second component is `true` when the fallback width was
/// used (unknown or unbounded type).
pub fn width_for_type(type_name: &str, args: &[u64], opts: &IngestOptions) -> (f64, bool) {
    let first_arg = args.first().copied();
    match type_name {
        "BOOL" | "BOOLEAN" | "TINYINT" => (1.0, false),
        "SMALLINT" | "SMALLSERIAL" | "INT2" => (2.0, false),
        "INT" | "INTEGER" | "MEDIUMINT" | "SERIAL" | "INT4" => (4.0, false),
        "BIGINT" | "BIGSERIAL" | "INT8" => (8.0, false),
        "REAL" | "FLOAT4" => (4.0, false),
        "FLOAT" | "DOUBLE" | "DOUBLE PRECISION" | "FLOAT8" => (8.0, false),
        // Fixed-point: natural binary width of the precision — ≤ 9 digits
        // fit a 32-bit integer, ≤ 18 a 64-bit one, beyond that packed
        // decimal at two digits per byte.
        "DECIMAL" | "NUMERIC" | "DEC" | "MONEY" => match first_arg {
            None => (8.0, false),
            Some(p) if p <= 9 => (4.0, false),
            Some(p) if p <= 18 => (8.0, false),
            Some(p) => ((p as f64 / 2.0).ceil() + 1.0, false),
        },
        "CHAR" | "CHARACTER" | "NCHAR" => (first_arg.unwrap_or(1).max(1) as f64, false),
        "VARCHAR" | "CHARACTER VARYING" | "NVARCHAR" | "VARCHAR2" => match first_arg {
            Some(n) => (n.max(1) as f64, false),
            None => (opts.text_width, true),
        },
        "DATE" => (4.0, false),
        "TIME" => (4.0, false),
        "TIMESTAMP" | "TIMESTAMPTZ" | "DATETIME" => (8.0, false),
        "UUID" => (16.0, false),
        "BIT" | "VARBIT" => (first_arg.unwrap_or(1).div_ceil(8) as f64, false),
        _ => (opts.text_width, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::TableId;

    fn opts() -> IngestOptions {
        IngestOptions::default()
    }

    #[test]
    fn parses_columns_and_widths() {
        let p = parse_schema(
            "CREATE TABLE users (\n\
               id BIGINT PRIMARY KEY,\n\
               email VARCHAR(64) NOT NULL UNIQUE,\n\
               age SMALLINT,\n\
               balance DECIMAL(12, 2) DEFAULT 0,\n\
               bio TEXT\n\
             );",
            &opts(),
        )
        .unwrap();
        let s = &p.schema;
        assert_eq!(s.n_tables(), 1);
        assert_eq!(s.n_attrs(), 5);
        let widths: Vec<f64> = s.attrs().iter().map(|a| a.width).collect();
        assert_eq!(widths, vec![8.0, 64.0, 2.0, 8.0, opts().text_width]);
        assert_eq!(p.width_fallbacks.len(), 1);
        assert_eq!(p.width_fallbacks[0].column, "bio");
        assert_eq!(p.width_fallbacks[0].sql_type, "TEXT");
    }

    #[test]
    fn table_constraints_are_skipped_but_keys_are_kept() {
        let p = parse_schema(
            "CREATE TABLE t (\n\
               a INT,\n\
               b INT,\n\
               PRIMARY KEY (a, b),\n\
               FOREIGN KEY (b) REFERENCES u(x),\n\
               CONSTRAINT chk CHECK (a > 0)\n\
             );",
            &opts(),
        )
        .unwrap();
        assert_eq!(p.schema.n_attrs(), 2);
        assert_eq!(
            p.primary_keys,
            vec![vec![vpart_model::AttrId(0), vpart_model::AttrId(1)]]
        );
    }

    #[test]
    fn primary_keys_survive_in_all_declaration_forms() {
        let p = parse_schema(
            "CREATE TABLE a (id BIGINT PRIMARY KEY, v INT);\n\
             CREATE TABLE b (x INT, y INT, CONSTRAINT b_pk PRIMARY KEY (y));\n\
             CREATE TABLE c (z INT);",
            &opts(),
        )
        .unwrap();
        assert_eq!(p.primary_keys.len(), 3);
        assert_eq!(p.primary_keys[0], vec![vpart_model::AttrId(0)]);
        assert_eq!(p.primary_keys[1], vec![vpart_model::AttrId(3)]);
        assert!(p.primary_keys[2].is_empty(), "no key declared");
    }

    #[test]
    fn pk_sort_qualifiers_are_not_key_columns() {
        let p = parse_schema(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a ASC, b DESC NULLS LAST));",
            &opts(),
        )
        .unwrap();
        assert_eq!(
            p.primary_keys,
            vec![vec![vpart_model::AttrId(0), vpart_model::AttrId(1)]]
        );
    }

    #[test]
    fn unknown_pk_columns_are_typed_errors() {
        assert!(matches!(
            parse_schema("CREATE TABLE t (a INT, PRIMARY KEY (nope));", &opts()),
            Err(IngestError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn unbalanced_parens_in_constraints_are_syntax_errors() {
        // Balanced nested parens in a CHECK parse fine...
        let p = parse_schema(
            "CREATE TABLE t (a INT, CONSTRAINT chk CHECK ((a > 0) AND (a < 9)));",
            &opts(),
        )
        .unwrap();
        assert_eq!(p.schema.n_attrs(), 1);
        // ...an unbalanced `(` is a loud error naming the open paren, not a
        // silent swallow of the statement's remainder.
        let err = parse_schema(
            "CREATE TABLE t (a INT, CONSTRAINT chk CHECK ((a > 0);",
            &opts(),
        )
        .unwrap_err();
        match err {
            IngestError::Syntax { expected, .. } => {
                assert!(expected.contains("matching"), "got {expected:?}")
            }
            other => panic!("expected Syntax error, got {other:?}"),
        }
        // Same for unbalanced type arguments.
        let err = parse_schema("CREATE TABLE t (a DECIMAL(12;", &opts()).unwrap_err();
        match err {
            IngestError::Syntax { expected, .. } => {
                assert!(expected.contains("matching"), "got {expected:?}")
            }
            other => panic!("expected Syntax error, got {other:?}"),
        }
    }

    #[test]
    fn multiple_tables_and_skipped_statements() {
        let p = parse_schema(
            "CREATE TABLE a (x INT);\n\
             CREATE INDEX idx ON a(x);\n\
             CREATE TABLE b (y CHAR(9));",
            &opts(),
        )
        .unwrap();
        assert_eq!(p.schema.n_tables(), 2);
        assert_eq!(p.skipped.len(), 1);
        assert_eq!(p.skipped[0].reason, SkipReason::NotADmlStatement);
        assert_eq!(p.schema.table_attrs(TableId(1)).len(), 1);
        assert_eq!(p.schema.width(vpart_model::AttrId(1)), 9.0);
    }

    #[test]
    fn numeric_precision_buckets() {
        let o = opts();
        assert_eq!(width_for_type("NUMERIC", &[4, 4], &o), (4.0, false));
        assert_eq!(width_for_type("NUMERIC", &[12, 2], &o), (8.0, false));
        assert_eq!(width_for_type("NUMERIC", &[38], &o), (20.0, false));
        assert_eq!(width_for_type("NUMERIC", &[], &o), (8.0, false));
        assert_eq!(width_for_type("GEOGRAPHY", &[], &o), (o.text_width, true));
    }

    #[test]
    fn two_word_types() {
        let p = parse_schema(
            "CREATE TABLE t (a DOUBLE PRECISION, b CHARACTER VARYING(20));",
            &opts(),
        )
        .unwrap();
        let widths: Vec<f64> = p.schema.attrs().iter().map(|a| a.width).collect();
        assert_eq!(widths, vec![8.0, 20.0]);
    }

    #[test]
    fn typed_errors_for_malformed_ddl() {
        assert!(matches!(
            parse_schema("CREATE TABLE t (a INT", &opts()),
            Err(IngestError::UnterminatedStatement { .. })
        ));
        assert!(matches!(
            parse_schema("CREATE TABLE t (a INT;", &opts()),
            Err(IngestError::Syntax { .. })
        ));
        assert!(matches!(
            parse_schema("CREATE TABLE t (a INT); CREATE TABLE T (b INT);", &opts()),
            Err(IngestError::DuplicateTable { line: 1, .. })
        ));
        assert_eq!(
            parse_schema("CREATE INDEX i ON t(x);", &opts()).unwrap_err(),
            IngestError::EmptySchema
        );
        assert_eq!(
            parse_schema("", &opts()).unwrap_err(),
            IngestError::EmptySchema
        );
    }

    #[test]
    fn if_not_exists_and_quoted_names() {
        let p = parse_schema(
            "CREATE TABLE IF NOT EXISTS \"Order\" (\"id\" INT);",
            &opts(),
        )
        .unwrap();
        assert_eq!(p.schema.tables()[0].name, "Order");
    }
}
