//! SQL tokenizer and statement splitter.
//!
//! Lexes a pragmatic SQL subset into identifier / number / string /
//! punctuation tokens with line numbers, strips comments, and splits the
//! token stream into `;`-terminated [`RawStatement`]s.
//!
//! Comments double as a side channel: a comment consisting entirely of
//! `key=value` pairs (e.g. `-- rows=10 freq=3` or `/*+ rows=10 */`) is an
//! *annotation comment*; its pairs are collected as [`Annotation`]s and
//! attached to the statement the comment naturally describes — a comment
//! inside a statement or on the same line as its terminating `;`
//! (`SELECT ...; -- rows=10`) annotates that statement, a comment on its
//! own line annotates the next one. Prose comments (anything that is not
//! purely pairs) are ignored, even if they mention `rows=10`.

use crate::error::IngestError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare or quoted identifier / keyword (original spelling preserved).
    Ident(String),
    /// Numeric literal, kept as text.
    Number(String),
    /// String literal content (quotes stripped, `''` unescaped).
    Str(String),
    /// Single punctuation / operator character.
    Punct(char),
    /// Bind parameter: `?`, `$n` or `:name`.
    Param,
}

impl Tok {
    /// Uppercased identifier text, if this is an identifier.
    pub fn keyword(&self) -> Option<String> {
        match self {
            Tok::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }

    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A `key=value` pair mined from a comment.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Lowercased key (`rows`, `freq`, `txn`, ...).
    pub key: String,
    /// Raw value text.
    pub value: String,
    /// 1-based source line of the comment.
    pub line: u32,
}

/// One `;`-terminated statement with its annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct RawStatement {
    /// The statement's tokens (terminator excluded).
    pub tokens: Vec<Token>,
    /// Line the statement starts on.
    pub line: u32,
    /// Annotations attached to this statement.
    pub annotations: Vec<Annotation>,
    /// Short source snippet for diagnostics.
    pub snippet: String,
}

impl RawStatement {
    /// The statement's leading keyword (uppercased), if any.
    pub fn head(&self) -> Option<String> {
        self.tokens.first().and_then(|t| t.tok.keyword())
    }

    /// Annotation lookup by key.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations
            .iter()
            .find(|a| a.key == key)
            .map(|a| a.value.as_str())
    }
}

/// Scans comment text for `key=value` pairs.
///
/// Only *annotation comments* — whose entire content (after an optional
/// leading `+` hint marker) is `key=value` pairs — are mined; prose
/// comments that merely mention `rows=10` are left alone.
fn mine_annotations(text: &str, line: u32, out: &mut Vec<Annotation>) {
    let mut pairs = Vec::new();
    for word in text
        .trim_start()
        .trim_start_matches('+')
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|w| !w.is_empty())
    {
        let Some((k, v)) = word.split_once('=') else {
            return; // prose comment
        };
        let key = k.to_ascii_lowercase();
        if key.is_empty()
            || v.is_empty()
            || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return; // prose comment
        }
        pairs.push(Annotation {
            key,
            value: v.to_string(),
            line,
        });
    }
    out.extend(pairs);
}

/// Builds the one-line diagnostic snippet for a statement.
fn snippet_of(src: &str, start: usize, end: usize) -> String {
    const MAX: usize = 60;
    let raw: String = src[start..end]
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ");
    if raw.len() <= MAX {
        raw
    } else {
        let mut cut = MAX;
        while !raw.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &raw[..cut])
    }
}

/// Lexes `src` and splits it into `;`-terminated statements.
///
/// Empty statements (stray `;`) are dropped. Trailing tokens without a
/// terminating `;` are an [`IngestError::UnterminatedStatement`].
pub fn split_statements(src: &str) -> Result<Vec<RawStatement>, IngestError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let mut statements: Vec<RawStatement> = Vec::new();
    let mut tokens: Vec<Token> = Vec::new();
    let mut annotations: Vec<Annotation> = Vec::new();
    let mut stmt_start: Option<usize> = None;
    // Line the previous statement's `;` sat on: a trailing comment on the
    // same line annotates that statement, not the next.
    let mut last_end_line: Option<u32> = None;

    let attach = |mined: Vec<Annotation>,
                  line: u32,
                  tokens: &[Token],
                  statements: &mut Vec<RawStatement>,
                  annotations: &mut Vec<Annotation>,
                  last_end_line: Option<u32>| {
        if tokens.is_empty() && last_end_line == Some(line) {
            if let Some(prev) = statements.last_mut() {
                prev.annotations.extend(mined);
                return;
            }
        }
        annotations.extend(mined);
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                let end = src[i..].find('\n').map_or(src.len(), |n| i + n);
                let mut mined = Vec::new();
                mine_annotations(&src[i + 2..end], line, &mut mined);
                attach(
                    mined,
                    line,
                    &tokens,
                    &mut statements,
                    &mut annotations,
                    last_end_line,
                );
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let Some(n) = src[i + 2..].find("*/") else {
                    return Err(IngestError::UnterminatedComment { line });
                };
                let body = &src[i + 2..i + 2 + n];
                let mut mined = Vec::new();
                mine_annotations(body, line, &mut mined);
                attach(
                    mined,
                    line,
                    &tokens,
                    &mut statements,
                    &mut annotations,
                    last_end_line,
                );
                line += body.matches('\n').count() as u32;
                i += n + 4;
            }
            '\'' => {
                let start_line = line;
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => return Err(IngestError::UnterminatedString { line: start_line }),
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(&b) => {
                            if b == b'\n' {
                                line += 1;
                            }
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                stmt_start.get_or_insert(i);
                tokens.push(Token {
                    tok: Tok::Str(s),
                    line: start_line,
                });
                i = j;
            }
            '"' | '`' => {
                let quote = bytes[i];
                let start_line = line;
                let Some(n) = src[i + 1..].find(quote as char) else {
                    return Err(IngestError::UnterminatedString { line: start_line });
                };
                stmt_start.get_or_insert(i);
                tokens.push(Token {
                    tok: Tok::Ident(src[i + 1..i + 1 + n].to_string()),
                    line: start_line,
                });
                i += n + 2;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'$')
                {
                    j += 1;
                }
                stmt_start.get_or_insert(i);
                tokens.push(Token {
                    tok: Tok::Ident(src[i..j].to_string()),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || bytes[j] == b'.'
                        || bytes[j] == b'e'
                        || bytes[j] == b'E'
                        || ((bytes[j] == b'+' || bytes[j] == b'-')
                            && matches!(bytes[j - 1], b'e' | b'E')))
                {
                    j += 1;
                }
                stmt_start.get_or_insert(i);
                tokens.push(Token {
                    tok: Tok::Number(src[i..j].to_string()),
                    line,
                });
                i = j;
            }
            '?' => {
                stmt_start.get_or_insert(i);
                tokens.push(Token {
                    tok: Tok::Param,
                    line,
                });
                i += 1;
            }
            '$' | ':' if matches!(bytes.get(i + 1), Some(b) if (*b as char).is_ascii_alphanumeric() || *b == b'_') =>
            {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                stmt_start.get_or_insert(i);
                tokens.push(Token {
                    tok: Tok::Param,
                    line,
                });
                i = j;
            }
            ';' => {
                if !tokens.is_empty() {
                    let start = stmt_start.unwrap_or(i);
                    statements.push(RawStatement {
                        line: tokens[0].line,
                        tokens: std::mem::take(&mut tokens),
                        annotations: std::mem::take(&mut annotations),
                        snippet: snippet_of(src, start, i),
                    });
                    last_end_line = Some(line);
                } else {
                    annotations.clear();
                }
                stmt_start = None;
                i += 1;
            }
            c => {
                stmt_start.get_or_insert(i);
                tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    if !tokens.is_empty() {
        return Err(IngestError::UnterminatedStatement {
            line: tokens[0].line,
        });
    }
    Ok(statements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_tracks_lines() {
        let sts = split_statements("SELECT a\nFROM t;\nSELECT b FROM u;").unwrap();
        assert_eq!(sts.len(), 2);
        assert_eq!(sts[0].line, 1);
        assert_eq!(sts[1].line, 3);
        assert_eq!(sts[0].head().as_deref(), Some("SELECT"));
        assert!(sts[0].tokens.iter().any(|t| t.tok.is_kw("from")));
    }

    #[test]
    fn annotations_attach_to_their_statement() {
        let sts = split_statements(
            "-- freq=2\nSELECT a FROM t WHERE b = ?; -- rows=10\nUPDATE t SET a = 1;",
        )
        .unwrap();
        // Leading comment annotates the statement after it; the trailing
        // comment on the `;` line annotates the statement it closes.
        assert_eq!(sts[0].annotation("freq"), Some("2"));
        assert_eq!(sts[0].annotation("rows"), Some("10"));
        assert_eq!(sts[1].annotation("rows"), None);
    }

    #[test]
    fn own_line_comment_annotates_the_next_statement() {
        let sts = split_statements("SELECT a FROM t;\n-- rows=7\nSELECT b FROM t;").unwrap();
        assert_eq!(sts[0].annotation("rows"), None);
        assert_eq!(sts[1].annotation("rows"), Some("7"));
    }

    #[test]
    fn hint_comments_attach_inline() {
        let sts = split_statements("SELECT /*+ rows=10 */ a FROM t;").unwrap();
        assert_eq!(sts[0].annotation("rows"), Some("10"));
    }

    #[test]
    fn prose_comments_are_not_mined() {
        let sts = split_statements(
            "-- annotate with rows=10 to mark iterated statements\nSELECT a FROM t;",
        )
        .unwrap();
        assert_eq!(sts[0].annotation("rows"), None);
    }

    #[test]
    fn strings_and_quoted_idents() {
        let sts =
            split_statements("INSERT INTO \"Order\" VALUES ('it''s', 3.5e2, ?, $1);").unwrap();
        let toks: Vec<&Tok> = sts[0].tokens.iter().map(|t| &t.tok).collect();
        assert!(toks.contains(&&Tok::Ident("Order".into())));
        assert!(toks.contains(&&Tok::Str("it's".into())));
        assert!(toks.contains(&&Tok::Number("3.5e2".into())));
        assert_eq!(toks.iter().filter(|t| ***t == Tok::Param).count(), 2);
    }

    #[test]
    fn unterminated_inputs_are_typed_errors() {
        assert_eq!(
            split_statements("SELECT 'oops"),
            Err(IngestError::UnterminatedString { line: 1 })
        );
        assert_eq!(
            split_statements("/* never closed"),
            Err(IngestError::UnterminatedComment { line: 1 })
        );
        assert_eq!(
            split_statements("SELECT a\nFROM t"),
            Err(IngestError::UnterminatedStatement { line: 1 })
        );
    }

    #[test]
    fn empty_statements_are_dropped() {
        assert!(split_statements(";;;  ;").unwrap().is_empty());
        assert!(split_statements("-- only a comment\n").unwrap().is_empty());
    }

    #[test]
    fn snippet_is_compact() {
        let long = format!("SELECT {} FROM t;", vec!["col"; 40].join(", "));
        let sts = split_statements(&long).unwrap();
        assert!(sts[0].snippet.len() <= 63);
        assert!(sts[0].snippet.starts_with("SELECT"));
    }
}
