//! # vpart_obs — offline-discipline observability
//!
//! A self-contained metrics + tracing layer for the vpart stack, built to
//! the same `vendor/`-shim philosophy as the rest of the workspace: no
//! network crates, no global state, no background threads. It provides:
//!
//! * a lock-cheap [`metrics`] registry (counters, gauges, fixed-bucket
//!   histograms) with Prometheus-style text exposition and a JSON
//!   snapshot — the substrate for a future `vpart serve` `GET /metrics`;
//! * structured span/event [`trace`]-ing with a JSONL sink carrying nested
//!   timings and key=value fields (`vpart solve|watch --trace-out`);
//! * an [`inspect`] summarizer that renders a recorded trace as per-chain
//!   convergence tables and epoch timelines (`vpart inspect`);
//! * a live health layer: a logical-clock [`series`] ring sampling the
//!   registry, an [`alerts`] rules engine with hysteresis driving a
//!   firing→resolved state machine, and a [`flight`] crash recorder that
//!   dumps the last-N records on faults and panics (`vpart monitor`,
//!   `vpart watch --health-out`).
//!
//! The entry point is the [`Obs`] handle. Observability is **off by
//! default**: [`Obs::disabled`] (also `Obs::default()`) carries no
//! allocation and every call on it early-returns after one `Option`
//! check, so instrumented hot paths cost < 5% even when compiled in.
//! [`Obs::enabled`] turns on recording; the handle is `Clone` and all
//! clones share one registry and one trace buffer, so it threads freely
//! through solver configs and across worker threads.
//!
//! ```
//! use vpart_obs::Obs;
//!
//! let obs = Obs::enabled();
//! let solve = obs.span_begin("solve", &[("restarts", 2u64.into())]);
//! for seed in 0..2u64 {
//!     let chain = obs.under(&solve);          // nested: parent = solve
//!     let span = chain.span_begin("chain", &[("seed", seed.into())]);
//!     chain.counter_add("sa_moves_total", 100.0);
//!     chain.span_end(span, &[("objective6", 1.5f64.into())]);
//! }
//! obs.span_end(solve, &[]);
//! assert!(obs.metrics_prometheus().contains("sa_moves_total 200"));
//! // 3 span records (plus one `.begin` event per span opened with fields).
//! let trace = obs.trace_json_lines();
//! assert_eq!(trace.lines().filter(|l| l.contains("\"type\":\"span\"")).count(), 3);
//! ```

pub mod alerts;
pub mod flight;
pub mod inspect;
pub mod metrics;
#[cfg(feature = "model-check")]
pub mod model_check;
pub mod series;
pub(crate) mod sync;
pub mod trace;

pub use alerts::{
    builtin_rules, rules_from_json, AlertEngine, AlertKind, AlertRule, AlertTransition,
    HealthMonitor, HealthSnapshot, Severity, DEFAULT_HEALTH_CAPACITY,
};
pub use flight::DEFAULT_FLIGHT_CAPACITY;
pub use inspect::{AlertEvent, TraceSummary};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, WALL_SECONDS_BUCKETS};
pub use series::{SeriesSample, TimeSeriesStore};
pub use trace::{FieldValue, Record, Span};

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    start: Instant,
    registry: Registry,
    trace: Mutex<Vec<Record>>,
    next_id: AtomicU64,
    /// Armed flight-recorder ring (None until [`Obs::arm_flight`]).
    flight: Mutex<Option<flight::FlightRing>>,
}

/// The observability handle (see crate docs). Cheap to clone; a disabled
/// handle is a `None` and every operation on it is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
    /// Default parent span id for spans/events begun through this handle.
    parent: u64,
}

impl Obs {
    /// A no-op handle: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording handle with a fresh registry and trace buffer.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                registry: Registry::new(),
                trace: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
                flight: Mutex::new(None),
            })),
            parent: 0,
        }
    }

    /// Whether this handle records anything. Hot paths batching locally
    /// can skip their accumulation entirely when this is `false`.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared metrics registry, when enabled. Use this to cache
    /// [`Counter`]/[`Gauge`] handles outside a loop.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Microseconds since this handle (or its root clone) was enabled.
    fn now_us(inner: &Inner) -> u64 {
        inner.start.elapsed().as_micros() as u64
    }

    // ----- metrics sugar -------------------------------------------------

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name).add(delta);
        }
    }

    /// Adds 1 to counter `name`.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1.0);
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name).set(v);
        }
    }

    /// Records `v` into histogram `name` (bounds fixed at first use).
    pub fn observe(&self, name: &str, bounds: &[f64], v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name, bounds).observe(v);
        }
    }

    /// Records a wall-clock duration (seconds) into histogram `name` with
    /// the standard [`WALL_SECONDS_BUCKETS`].
    pub fn observe_wall(&self, name: &str, seconds: f64) {
        self.observe(name, WALL_SECONDS_BUCKETS, seconds);
    }

    // ----- tracing -------------------------------------------------------

    /// Opens a span named `name` under this handle's parent. On a disabled
    /// handle the returned [`Span`] is inert (id 0, no allocation beyond
    /// the empty name).
    pub fn span_begin(&self, name: &str, fields: &[(&str, FieldValue)]) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                id: 0,
                parent: 0,
                name: String::new(),
                start_us: 0,
            };
        };
        // ordering: Relaxed — ids only need to be unique, not ordered
        // with any other memory; fetch_add is atomic regardless.
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let span = Span {
            id,
            parent: self.parent,
            name: name.to_string(),
            start_us: Self::now_us(inner),
        };
        if !fields.is_empty() {
            // Opening fields become an event so they are visible even if
            // the span never ends (e.g. a timed-out chain).
            self.record(Record::Event {
                parent: id,
                name: format!("{name}.begin"),
                at_us: span.start_us,
                fields: own_fields(fields),
            });
        }
        span
    }

    /// Closes `span`, attaching `fields` and writing its record.
    pub fn span_end(&self, span: Span, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        if span.id == 0 {
            return; // span from a disabled handle
        }
        let end_us = Self::now_us(inner);
        self.record(Record::Span {
            id: span.id,
            parent: span.parent,
            name: span.name,
            start_us: span.start_us,
            dur_us: end_us.saturating_sub(span.start_us),
            fields: own_fields(fields),
        });
    }

    /// Emits an instantaneous event under this handle's parent.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        self.record(Record::Event {
            parent: self.parent,
            name: name.to_string(),
            at_us: Self::now_us(inner),
            fields: own_fields(fields),
        });
    }

    /// Microseconds since this handle was enabled (0 when disabled). Pair
    /// with [`Obs::event_at`] to capture a cheap POD timestamp in a hot
    /// loop and defer record construction (allocations, the trace lock)
    /// until after the loop.
    pub fn timestamp_us(&self) -> u64 {
        self.inner.as_deref().map(Self::now_us).unwrap_or(0)
    }

    /// Emits an event stamped with a caller-captured `at_us` (from
    /// [`Obs::timestamp_us`]) instead of the current time.
    pub fn event_at(&self, name: &str, at_us: u64, fields: &[(&str, FieldValue)]) {
        let Some(_) = &self.inner else { return };
        self.record(Record::Event {
            parent: self.parent,
            name: name.to_string(),
            at_us,
            fields: own_fields(fields),
        });
    }

    /// A clone of this handle whose spans/events default to nesting under
    /// `span`. This is how parent ids cross crate boundaries without
    /// threading them through solver configs.
    pub fn under(&self, span: &Span) -> Self {
        Self {
            inner: self.inner.clone(),
            parent: if self.inner.is_some() { span.id } else { 0 },
        }
    }

    fn record(&self, record: Record) {
        if let Some(inner) = &self.inner {
            // Feed the black box first: the ring stores serialized lines
            // so a crash dump is pure IO. Only pay for serialization when
            // a ring is actually armed.
            if let Ok(mut flight) = inner.flight.lock() {
                if let Some(ring) = flight.as_mut() {
                    ring.push(record.to_json_line());
                }
            }
            inner.trace.lock().expect("trace lock").push(record);
        }
    }

    // ----- flight recorder -----------------------------------------------

    /// Arms the crash flight recorder: from now on the last `capacity`
    /// records are mirrored into an in-memory ring, dumped into `dir` as
    /// `flight_<point>.jsonl` by [`Obs::dump_flight`] or the panic hook.
    /// Returns `false` on a disabled handle (nothing armed).
    pub fn arm_flight(&self, dir: &Path, capacity: usize) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if let Ok(mut flight) = inner.flight.lock() {
            *flight = Some(flight::FlightRing::new(dir, capacity));
            true
        } else {
            false
        }
    }

    /// Whether a flight ring is currently armed.
    pub fn flight_armed(&self) -> bool {
        self.inner
            .as_deref()
            .and_then(|i| i.flight.lock().ok().map(|f| f.is_some()))
            .unwrap_or(false)
    }

    /// Dumps the armed ring as `flight_<point>.jsonl`, returning the
    /// written path. `None` when disabled, unarmed, or on IO failure —
    /// the dump is best-effort by design: it runs on crash paths where a
    /// secondary failure must not mask the original error.
    pub fn dump_flight(&self, point: &str) -> Option<std::path::PathBuf> {
        let inner = self.inner.as_deref()?;
        let at_us = Self::now_us(inner);
        let flight = inner.flight.lock().ok()?;
        flight.as_ref()?.dump(point, at_us).ok()
    }

    /// Installs a process-wide panic hook that dumps the armed ring as
    /// `flight_panic.jsonl` before delegating to the previously installed
    /// hook. No-op on a disabled handle. Install once, after arming.
    pub fn install_flight_panic_hook(&self) {
        if !self.is_enabled() {
            return;
        }
        let obs = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = obs.dump_flight("panic");
            prev(info);
        }));
    }

    // ----- export --------------------------------------------------------

    /// The recorded trace as JSONL text (one record per line, possibly
    /// empty).
    pub fn trace_json_lines(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let records = inner.trace.lock().expect("trace lock");
        let mut out = String::new();
        for r in records.iter() {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Writes the trace JSONL to `path`.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.trace_json_lines())
    }

    /// Prometheus-style text exposition of the metrics registry (empty on
    /// a disabled handle).
    pub fn metrics_prometheus(&self) -> String {
        self.inner
            .as_deref()
            .map(|i| i.registry.render_prometheus())
            .unwrap_or_default()
    }

    /// JSON snapshot of the metrics registry (`null` on a disabled
    /// handle).
    pub fn metrics_json(&self) -> serde_json::Value {
        self.inner
            .as_deref()
            .map(|i| i.registry.snapshot_json())
            .unwrap_or(serde_json::Value::Null)
    }

    /// Writes the Prometheus exposition to `path`.
    pub fn write_metrics(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.metrics_prometheus())
    }
}

fn own_fields(fields: &[(&str, FieldValue)]) -> Vec<(String, FieldValue)> {
    fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.counter_inc("c_total");
        obs.gauge_set("g", 1.0);
        obs.observe_wall("w", 0.1);
        let span = obs.span_begin("s", &[("k", 1u64.into())]);
        assert_eq!(span.id(), 0);
        obs.event("e", &[]);
        obs.span_end(span, &[]);
        assert_eq!(obs.trace_json_lines(), "");
        assert_eq!(obs.metrics_prometheus(), "");
        assert_eq!(obs.metrics_json(), serde_json::Value::Null);
    }

    #[test]
    fn clones_share_registry_and_trace() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        obs.counter_inc("shared_total");
        clone.counter_inc("shared_total");
        assert!(obs.metrics_prometheus().contains("shared_total 2"));

        let parent = obs.span_begin("outer", &[]);
        let nested = obs.under(&parent);
        let child = nested.span_begin("inner", &[]);
        nested.span_end(child, &[]);
        obs.span_end(parent, &[]);
        let lines: Vec<serde_json::Value> = obs
            .trace_json_lines()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 2);
        // Inner serializes first (ends first) and points at outer's id.
        assert_eq!(lines[0].get("name").and_then(|n| n.as_str()), Some("inner"));
        assert_eq!(
            lines[0].get("parent").and_then(|p| p.as_u64()),
            lines[1].get("id").and_then(|i| i.as_u64()),
        );
    }

    #[test]
    fn span_begin_fields_survive_unfinished_spans() {
        let obs = Obs::enabled();
        let _leaked = obs.span_begin("chain", &[("seed", 9u64.into())]);
        // The span never ends, but the begin event preserves its fields.
        let text = obs.trace_json_lines();
        let v: serde_json::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("chain.begin"));
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("seed"))
                .and_then(|s| s.as_u64()),
            Some(9)
        );
    }
}
