//! Crash flight recorder: a bounded ring of recent trace records.
//!
//! When armed (via [`Obs::arm_flight`](crate::Obs::arm_flight)), every
//! record that reaches the trace buffer is *also* serialized into a
//! fixed-capacity in-memory ring — the black box. On a crash the ring is
//! dumped as `flight_<point>.jsonl` into the armed directory:
//!
//! * fault sites (the PR 9 `FaultInjector` points in the engine) dump
//!   with the point name, e.g. `flight_migration.batch.jsonl`, right
//!   before the injected error propagates;
//! * a process-wide panic hook
//!   ([`Obs::install_flight_panic_hook`](crate::Obs::install_flight_panic_hook))
//!   dumps `flight_panic.jsonl` before delegating to the previous hook.
//!
//! A dump is plain trace JSONL — the last N span/event records, closed by
//! one `flight.dump` marker event — so `vpart inspect` and
//! [`TraceSummary::from_jsonl`](crate::inspect::TraceSummary::from_jsonl)
//! read it unchanged. The ring holds *serialized lines*, so dumping from
//! a panic hook does no record formatting, only IO.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Default ring capacity armed by the CLI's `--flight-dir`.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// The armed ring (held inside the `Obs` handle behind a mutex).
#[derive(Debug)]
pub(crate) struct FlightRing {
    dir: PathBuf,
    capacity: usize,
    lines: VecDeque<String>,
    /// Records pushed past capacity (oldest dropped).
    dropped: u64,
}

impl FlightRing {
    pub(crate) fn new(dir: &Path, capacity: usize) -> Self {
        Self {
            dir: dir.to_path_buf(),
            capacity: capacity.max(1),
            lines: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends one serialized record line, evicting the oldest at
    /// capacity.
    pub(crate) fn push(&mut self, line: String) {
        self.lines.push_back(line);
        while self.lines.len() > self.capacity {
            self.lines.pop_front();
            self.dropped += 1;
        }
    }

    /// Writes the ring as `flight_<point>.jsonl` in the armed directory,
    /// appending a `flight.dump` marker event stamped `at_us`. Path
    /// separators and whitespace in `point` are sanitized to `_`.
    pub(crate) fn dump(&self, point: &str, at_us: u64) -> std::io::Result<PathBuf> {
        let safe: String = point
            .chars()
            .map(|c| {
                if c == '/' || c == '\\' || c.is_whitespace() {
                    '_'
                } else {
                    c
                }
            })
            .collect();
        let path = self.dir.join(format!("flight_{safe}.jsonl"));
        let mut text = String::new();
        for line in &self.lines {
            text.push_str(line);
            text.push('\n');
        }
        let marker = crate::trace::Record::Event {
            parent: 0,
            name: "flight.dump".to_string(),
            at_us,
            fields: vec![
                ("point".to_string(), point.into()),
                ("records".to_string(), (self.lines.len() as u64).into()),
                ("dropped".to_string(), self.dropped.into()),
            ],
        };
        text.push_str(&marker.to_json_line());
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use crate::inspect::TraceSummary;
    use crate::Obs;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vpart-flight-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create flight test dir");
        dir
    }

    #[test]
    fn dump_on_fault_round_trips_through_trace_summary() {
        let dir = tmp_dir("fault");
        let obs = Obs::enabled();
        assert!(obs.arm_flight(&dir, 4));
        assert!(obs.flight_armed());
        // 6 events through a capacity-4 ring: the first two fall out.
        for i in 0..6u64 {
            obs.event("step", &[("i", i.into())]);
        }
        let path = obs.dump_flight("migration.batch").expect("dump succeeds");
        assert!(path.ends_with("flight_migration.batch.jsonl"));
        let text = std::fs::read_to_string(&path).expect("dump readable");
        let summary = TraceSummary::from_jsonl(&text).expect("dump is valid trace JSONL");
        // 4 ring events + the flight.dump marker.
        assert_eq!(summary.events, 5);
        assert!(text.contains("\"i\":2"), "oldest surviving record");
        assert!(!text.contains("\"i\":1"), "evicted record must be gone");
        assert!(text.contains("\"dropped\":2"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_on_panic_via_installed_hook() {
        let dir = tmp_dir("panic");
        let obs = Obs::enabled();
        obs.arm_flight(&dir, 16);
        obs.event("before_crash", &[("ctx", "batch 3".into())]);
        obs.install_flight_panic_hook();
        let result = std::panic::catch_unwind(|| panic!("injected test crash"));
        assert!(result.is_err());
        // Restore the default hook so later test panics print normally.
        let _ = std::panic::take_hook();
        let path = dir.join("flight_panic.jsonl");
        let text = std::fs::read_to_string(&path).expect("panic dump written");
        assert!(text.contains("before_crash"));
        assert!(text.contains("batch 3"));
        TraceSummary::from_jsonl(&text).expect("panic dump is valid trace JSONL");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_or_unarmed_handles_never_dump() {
        let disabled = Obs::disabled();
        assert!(!disabled.arm_flight(std::path::Path::new("/nonexistent"), 8));
        assert!(!disabled.flight_armed());
        assert!(disabled.dump_flight("x").is_none());

        let unarmed = Obs::enabled();
        assert!(!unarmed.flight_armed());
        assert!(unarmed.dump_flight("x").is_none());
    }
}
