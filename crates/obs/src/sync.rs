//! Sync-primitive facade for the metrics registry.
//!
//! The registry's hot-path types ([`crate::metrics`]) pull their atomics
//! and locks from here instead of `std::sync` directly. Normally these
//! re-export `std`; under the `model-check` feature they come from the
//! vendored `interleave` shim, whose operations double as scheduling
//! points so [`crate::model_check`] can exhaustively explore small
//! interleavings of the real registry code (not a copy of it). Outside an
//! `interleave::model` run the shim types delegate to `std`, so enabling
//! the feature does not change ordinary test behavior.

#[cfg(feature = "model-check")]
pub(crate) use interleave::sync::{atomic, RwLock};

#[cfg(not(feature = "model-check"))]
pub(crate) use std::sync::{atomic, RwLock};
