//! Declarative alert/SLO rules evaluated against the time-series store.
//!
//! An [`AlertRule`] names a metric and a breach condition — a threshold
//! ([`AlertKind::Above`] / [`AlertKind::Below`] / [`AlertKind::AbsAbove`]),
//! a rate-of-change bound ([`AlertKind::RateAbove`]), or an absence check
//! ([`AlertKind::Absence`]) — plus a `for_ticks` hysteresis: the condition
//! must hold for that many *consecutive* logical ticks before the rule
//! fires. [`AlertEngine::evaluate`] runs every rule against the newest
//! sample each tick and drives a firing → resolved state machine; every
//! transition is appended to the engine's history **and** emitted as an
//! `alert` trace event through the [`Obs`] handle, so a recorded trace
//! carries the exact alert timeline and `vpart monitor` can reproduce it
//! bit-for-bit offline.
//!
//! [`builtin_rules`] covers the failure modes the stack already exhibits:
//! simulated-annealing acceptance collapse, cost-model error out of
//! bound, watcher degraded-mode entry, and migration retry buildup.
//!
//! [`HealthMonitor`] is the one-stop glue — a store plus an engine ticked
//! together from the watch/replay loops — and [`HealthSnapshot`] parses
//! the JSON it writes (`vpart watch --health-out`) back for `vpart
//! inspect --health` and `vpart monitor --metrics`.

use std::path::Path;

use serde_json::Value;

use crate::series::TimeSeriesStore;
use crate::Obs;

/// How loud a rule is. Critical alerts gate `--alerts-exit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Worth surfacing, not worth failing a run over.
    Warning,
    /// Still-firing at exit fails the run under `--alerts-exit`.
    Critical,
}

impl Severity {
    /// Stable lowercase name used in JSON and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Parses [`Severity::as_str`] output.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "warning" => Ok(Severity::Warning),
            "critical" => Ok(Severity::Critical),
            other => Err(format!("unknown severity {other:?} (warning|critical)")),
        }
    }
}

/// The breach condition of a rule (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum AlertKind {
    /// Breach while the metric's newest value exceeds the bound.
    Above(f64),
    /// Breach while the newest value is below the bound.
    Below(f64),
    /// Breach while `|value|` exceeds the bound (two-sided threshold,
    /// e.g. a signed model-error ratio drifting out of band).
    AbsAbove(f64),
    /// Breach while the counter's per-tick rate exceeds the bound
    /// (needs two samples before it can breach).
    RateAbove(f64),
    /// Breach while the metric is missing from the newest sample — a
    /// liveness check on something that should always be exported.
    Absence,
}

impl AlertKind {
    fn kind_str(&self) -> &'static str {
        match self {
            AlertKind::Above(_) => "above",
            AlertKind::Below(_) => "below",
            AlertKind::AbsAbove(_) => "abs_above",
            AlertKind::RateAbove(_) => "rate_above",
            AlertKind::Absence => "absence",
        }
    }

    fn bound(&self) -> Option<f64> {
        match self {
            AlertKind::Above(b)
            | AlertKind::Below(b)
            | AlertKind::AbsAbove(b)
            | AlertKind::RateAbove(b) => Some(*b),
            AlertKind::Absence => None,
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Unique rule name (the key of the alert timeline).
    pub name: String,
    /// The metric (rendered series name) the rule watches.
    pub metric: String,
    /// Breach condition.
    pub kind: AlertKind,
    /// Consecutive breaching ticks required before the rule fires (≥ 1).
    pub for_ticks: u64,
    /// Loudness; critical rules gate `--alerts-exit`.
    pub severity: Severity,
}

impl AlertRule {
    /// A rule with `for_ticks = 1` (fires on the first breach).
    pub fn new(name: &str, metric: &str, kind: AlertKind, severity: Severity) -> Self {
        Self {
            name: name.to_string(),
            metric: metric.to_string(),
            kind,
            for_ticks: 1,
            severity,
        }
    }

    /// Sets the hysteresis window (clamped to ≥ 1).
    pub fn for_ticks(mut self, ticks: u64) -> Self {
        self.for_ticks = ticks.max(1);
        self
    }

    /// Whether the newest sample breaches this rule, and the observed
    /// value driving the decision (0 for a satisfied absence rule).
    fn breach(&self, store: &TimeSeriesStore) -> (bool, f64) {
        match &self.kind {
            AlertKind::Above(b) => match store.value(&self.metric) {
                Some(v) => (v > *b, v),
                None => (false, 0.0),
            },
            AlertKind::Below(b) => match store.value(&self.metric) {
                Some(v) => (v < *b, v),
                None => (false, 0.0),
            },
            AlertKind::AbsAbove(b) => match store.value(&self.metric) {
                Some(v) => (v.abs() > *b, v),
                None => (false, 0.0),
            },
            AlertKind::RateAbove(b) => match store.counter_rate(&self.metric) {
                Some(r) => (r > *b, r),
                None => (false, 0.0),
            },
            AlertKind::Absence => match store.value(&self.metric) {
                Some(v) => (false, v),
                None => (true, 0.0),
            },
        }
    }
}

/// A firing or resolved edge in a rule's state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Logical tick the edge happened at.
    pub tick: u64,
    /// Rule name.
    pub rule: String,
    /// `"firing"` or `"resolved"`.
    pub state: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// Metric value (or rate) observed at the edge.
    pub value: f64,
}

impl AlertTransition {
    /// The transition as a JSON object — the exact shape `vpart monitor`
    /// reproduces from recorded `alert` trace events, so key order and
    /// value formatting here define the bit-identity contract.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "tick": self.tick,
            "rule": self.rule.clone(),
            "state": self.state,
            "severity": self.severity.as_str(),
            "value": Value::Float(self.value),
        })
    }
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    /// Consecutive breaching ticks so far (reset on any non-breach).
    streak: u64,
    firing: bool,
    /// Tick the rule last started firing at (meaningful while `firing`).
    since: u64,
}

/// Evaluates a rule set against a [`TimeSeriesStore`] each tick (see
/// module docs).
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    history: Vec<AlertTransition>,
}

impl AlertEngine {
    /// An engine over `rules`. Duplicate rule names are rejected — the
    /// timeline keys transitions by name.
    pub fn new(rules: Vec<AlertRule>) -> Result<Self, String> {
        for (i, r) in rules.iter().enumerate() {
            if rules[..i].iter().any(|p| p.name == r.name) {
                return Err(format!("duplicate alert rule name {:?}", r.name));
            }
        }
        let states = vec![RuleState::default(); rules.len()];
        Ok(Self {
            rules,
            states,
            history: Vec::new(),
        })
    }

    /// The rule set.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Every firing/resolved edge so far, in evaluation order.
    pub fn transitions(&self) -> &[AlertTransition] {
        &self.history
    }

    /// Rules currently firing, with the tick they started firing at.
    pub fn firing(&self) -> Vec<(&AlertRule, u64)> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.firing)
            .map(|(r, s)| (r, s.since))
            .collect()
    }

    /// Whether any [`Severity::Critical`] rule is currently firing.
    pub fn any_critical_firing(&self) -> bool {
        self.rules
            .iter()
            .zip(&self.states)
            .any(|(r, s)| s.firing && r.severity == Severity::Critical)
    }

    /// Runs every rule against the store's newest sample at logical time
    /// `tick`, returning the edges produced this tick. Each edge is also
    /// recorded in the history and emitted as an `alert` trace event on
    /// `obs`.
    pub fn evaluate(
        &mut self,
        tick: u64,
        store: &TimeSeriesStore,
        obs: &Obs,
    ) -> Vec<AlertTransition> {
        let mut edges = Vec::new();
        for (rule, state) in self.rules.iter().zip(&mut self.states) {
            let (breach, value) = rule.breach(store);
            if breach {
                state.streak += 1;
                if !state.firing && state.streak >= rule.for_ticks {
                    state.firing = true;
                    state.since = tick;
                    edges.push(AlertTransition {
                        tick,
                        rule: rule.name.clone(),
                        state: "firing",
                        severity: rule.severity,
                        value,
                    });
                }
            } else {
                state.streak = 0;
                if state.firing {
                    state.firing = false;
                    edges.push(AlertTransition {
                        tick,
                        rule: rule.name.clone(),
                        state: "resolved",
                        severity: rule.severity,
                        value,
                    });
                }
            }
        }
        for edge in &edges {
            obs.event(
                "alert",
                &[
                    ("tick", edge.tick.into()),
                    ("rule", edge.rule.as_str().into()),
                    ("state", edge.state.into()),
                    ("severity", edge.severity.as_str().into()),
                    ("value", edge.value.into()),
                ],
            );
        }
        self.history.extend(edges.iter().cloned());
        edges
    }

    /// Deterministic JSON: the rule set, the full transition history, and
    /// the names currently firing.
    pub fn snapshot_json(&self) -> Value {
        let rules: Vec<Value> = self
            .rules
            .iter()
            .map(|r| {
                serde_json::json!({
                    "name": r.name.clone(),
                    "metric": r.metric.clone(),
                    "kind": r.kind.kind_str(),
                    "bound": r.kind.bound().map(Value::Float).unwrap_or(Value::Null),
                    "for_ticks": r.for_ticks,
                    "severity": r.severity.as_str(),
                })
            })
            .collect();
        let transitions: Vec<Value> = self.history.iter().map(AlertTransition::to_json).collect();
        let firing: Vec<Value> = self
            .firing()
            .iter()
            .map(|(r, since)| {
                serde_json::json!({
                    "rule": r.name.clone(),
                    "severity": r.severity.as_str(),
                    "since": *since,
                })
            })
            .collect();
        serde_json::json!({
            "rules": Value::Array(rules),
            "transitions": Value::Array(transitions),
            "firing": Value::Array(firing),
        })
    }
}

/// The built-in rule set: the failure modes the stack already exhibits.
///
/// | rule | metric | condition | for | severity |
/// |---|---|---|---|---|
/// | `sa-acceptance-collapse` | `sa_acceptance_ratio` | `< 0.01` | 2 | warning |
/// | `model-error-out-of-bound` | `model_error_ratio` | `\|v\| > 0.15` | 1 | critical |
/// | `watch-degraded` | `watch_degraded` | `> 0.5` | 1 | critical |
/// | `migration-retry-buildup` | `migration_retries_total` | rate `> 0` | 2 | warning |
pub fn builtin_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::new(
            "sa-acceptance-collapse",
            "sa_acceptance_ratio",
            AlertKind::Below(0.01),
            Severity::Warning,
        )
        .for_ticks(2),
        AlertRule::new(
            "model-error-out-of-bound",
            "model_error_ratio",
            AlertKind::AbsAbove(0.15),
            Severity::Critical,
        ),
        AlertRule::new(
            "watch-degraded",
            "watch_degraded",
            AlertKind::Above(0.5),
            Severity::Critical,
        ),
        AlertRule::new(
            "migration-retry-buildup",
            "migration_retries_total",
            AlertKind::RateAbove(0.0),
            Severity::Warning,
        )
        .for_ticks(2),
    ]
}

/// Parses a JSON rules file: an array of objects with `name`, `metric`,
/// `kind` (`above`|`below`|`abs_above`|`rate_above`|`absence`), `bound`
/// (required except for `absence`), and optional `for_ticks` (default 1)
/// and `severity` (default `warning`).
pub fn rules_from_json(text: &str) -> Result<Vec<AlertRule>, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("rules file: {e}"))?;
    let arr = v.as_array().ok_or("rules file must be a JSON array")?;
    let mut rules = Vec::with_capacity(arr.len());
    for (i, r) in arr.iter().enumerate() {
        let field = |key: &str| -> Result<&str, String> {
            r.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("rule {i}: missing string field {key:?}"))
        };
        let name = field("name")?;
        let metric = field("metric")?;
        let kind_str = field("kind")?;
        let bound = || -> Result<f64, String> {
            r.get("bound").and_then(Value::as_f64).ok_or_else(|| {
                format!("rule {i} ({name}): kind {kind_str:?} needs a numeric \"bound\"")
            })
        };
        let kind = match kind_str {
            "above" => AlertKind::Above(bound()?),
            "below" => AlertKind::Below(bound()?),
            "abs_above" => AlertKind::AbsAbove(bound()?),
            "rate_above" => AlertKind::RateAbove(bound()?),
            "absence" => AlertKind::Absence,
            other => {
                return Err(format!(
                    "rule {i} ({name}): unknown kind {other:?} (above|below|abs_above|rate_above|absence)"
                ))
            }
        };
        let severity = match r.get("severity").and_then(Value::as_str) {
            Some(s) => Severity::parse(s).map_err(|e| format!("rule {i} ({name}): {e}"))?,
            None => Severity::Warning,
        };
        let for_ticks = r.get("for_ticks").and_then(Value::as_u64).unwrap_or(1);
        rules.push(AlertRule::new(name, metric, kind, severity).for_ticks(for_ticks));
    }
    AlertEngine::new(rules).map(|e| e.rules)
}

// ---------------------------------------------------------------------------
// HealthMonitor: store + engine glue for the watch/replay loops
// ---------------------------------------------------------------------------

/// Default ring capacity used by the CLI's `--health-out`.
pub const DEFAULT_HEALTH_CAPACITY: usize = 256;

/// A [`TimeSeriesStore`] and [`AlertEngine`] ticked together on the
/// caller's logical clock. This is what `vpart watch`/`vpart replay`
/// attach when `--health-out` or `--alerts-exit` is given.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    store: TimeSeriesStore,
    alerts: AlertEngine,
}

impl HealthMonitor {
    /// A monitor with the given ring capacity and rule set.
    pub fn new(capacity: usize, rules: Vec<AlertRule>) -> Result<Self, String> {
        Ok(Self {
            store: TimeSeriesStore::new(capacity),
            alerts: AlertEngine::new(rules)?,
        })
    }

    /// A monitor with the [`builtin_rules`].
    pub fn with_builtin_rules(capacity: usize) -> Self {
        Self {
            store: TimeSeriesStore::new(capacity),
            alerts: AlertEngine::new(builtin_rules()).expect("builtin rules are valid"),
        }
    }

    /// Samples `obs`'s registry at `tick` and evaluates every rule,
    /// returning this tick's transitions. No-op on a disabled handle.
    pub fn tick(&mut self, tick: u64, obs: &Obs) -> Vec<AlertTransition> {
        let Some(registry) = obs.registry() else {
            return Vec::new();
        };
        self.store.sample(tick, registry);
        self.alerts.evaluate(tick, &self.store, obs)
    }

    /// The underlying time-series ring.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// The underlying alert engine.
    pub fn alerts(&self) -> &AlertEngine {
        &self.alerts
    }

    /// Whether any critical rule is currently firing (the
    /// `--alerts-exit` gate).
    pub fn any_critical_firing(&self) -> bool {
        self.alerts.any_critical_firing()
    }

    /// The combined health snapshot: `{"series": ..., "alerts": ...}`.
    pub fn snapshot_json(&self) -> Value {
        serde_json::json!({
            "series": self.store.snapshot_json(),
            "alerts": self.alerts.snapshot_json(),
        })
    }

    /// Writes [`HealthMonitor::snapshot_json`] (pretty-printed) to
    /// `path` — the `--health-out` sink, overwritten each tick.
    pub fn write_snapshot(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(&self.snapshot_json())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        text.push('\n');
        std::fs::write(path, text)
    }
}

/// A parsed `--health-out` snapshot (the read side of
/// [`HealthMonitor::write_snapshot`]), used by `vpart inspect --health`
/// and `vpart monitor --metrics`.
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// The reconstructed sample ring.
    pub series: TimeSeriesStore,
    /// Alert transition history, as `(tick, rule, state, severity, value)`.
    pub transitions: Vec<(u64, String, String, String, f64)>,
    /// Rule names still firing when the snapshot was written.
    pub firing: Vec<String>,
}

impl HealthSnapshot {
    /// Parses [`HealthMonitor::snapshot_json`] output.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let series = TimeSeriesStore::from_snapshot_json(
            v.get("series").ok_or("health snapshot has no \"series\"")?,
        )?;
        let alerts = v.get("alerts").ok_or("health snapshot has no \"alerts\"")?;
        let mut transitions = Vec::new();
        for (i, t) in alerts
            .get("transitions")
            .and_then(Value::as_array)
            .unwrap_or(&Vec::new())
            .iter()
            .enumerate()
        {
            let str_field = |key: &str| -> Result<String, String> {
                t.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("transition {i}: missing {key:?}"))
            };
            transitions.push((
                t.get("tick")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("transition {i}: missing \"tick\""))?,
                str_field("rule")?,
                str_field("state")?,
                str_field("severity")?,
                t.get("value").and_then(Value::as_f64).unwrap_or(0.0),
            ));
        }
        let firing = alerts
            .get("firing")
            .and_then(Value::as_array)
            .map(|arr| {
                arr.iter()
                    .filter_map(|f| f.get("rule").and_then(Value::as_str).map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(Self {
            series,
            transitions,
            firing,
        })
    }

    /// Parses a snapshot file from disk.
    pub fn from_path(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let v: Value =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&v)
    }

    /// Ticks whose sample shows `watch_degraded == 1` (degraded epochs).
    pub fn degraded_ticks(&self) -> Vec<u64> {
        self.series
            .samples()
            .filter(|s| s.gauges.get("watch_degraded").copied().unwrap_or(0.0) > 0.5)
            .map(|s| s.tick)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn store_with(ticks: &[(u64, f64)], metric: &str, gauge: bool) -> TimeSeriesStore {
        let reg = Registry::new();
        let mut store = TimeSeriesStore::new(16);
        for &(tick, v) in ticks {
            if gauge {
                reg.gauge(metric).set(v);
            } else {
                let cur = store.value(metric).unwrap_or(0.0);
                reg.counter(metric).add(v - cur);
            }
            store.sample(tick, &reg);
        }
        store
    }

    fn eval_seq(rule: AlertRule, values: &[f64]) -> Vec<(u64, &'static str)> {
        let metric = rule.metric.clone();
        let reg = Registry::new();
        let mut store = TimeSeriesStore::new(16);
        let mut engine = AlertEngine::new(vec![rule]).expect("engine builds");
        let obs = Obs::disabled();
        let mut edges = Vec::new();
        for (tick, v) in values.iter().enumerate() {
            reg.gauge(&metric).set(*v);
            store.sample(tick as u64, &reg);
            for e in engine.evaluate(tick as u64, &store, &obs) {
                edges.push((e.tick, e.state));
            }
        }
        edges
    }

    #[test]
    fn hysteresis_delays_firing_until_streak_reached() {
        let rule =
            AlertRule::new("hot", "g", AlertKind::Above(10.0), Severity::Warning).for_ticks(3);
        // Breaches at ticks 1,2 then dips — streak resets, never fires.
        assert_eq!(
            eval_seq(rule.clone(), &[0.0, 20.0, 20.0, 5.0, 20.0]),
            vec![]
        );
        // Three consecutive breaches (ticks 1..=3) fire exactly at tick 3.
        assert_eq!(
            eval_seq(rule, &[0.0, 20.0, 20.0, 20.0, 5.0]),
            vec![(3, "firing"), (4, "resolved")]
        );
    }

    #[test]
    fn flapping_metric_fires_and_resolves_each_cycle() {
        let rule = AlertRule::new("flap", "g", AlertKind::Above(1.0), Severity::Critical);
        assert_eq!(
            eval_seq(rule, &[2.0, 0.0, 2.0, 0.0]),
            vec![
                (0, "firing"),
                (1, "resolved"),
                (2, "firing"),
                (3, "resolved")
            ]
        );
    }

    #[test]
    fn absence_rule_fires_until_metric_appears() {
        let rule = AlertRule::new("gone", "present", AlertKind::Absence, Severity::Warning);
        let reg = Registry::new();
        let mut store = TimeSeriesStore::new(8);
        let mut engine = AlertEngine::new(vec![rule]).expect("engine builds");
        let obs = Obs::disabled();
        reg.gauge("other").set(1.0);
        store.sample(0, &reg);
        let e0 = engine.evaluate(0, &store, &obs);
        assert_eq!(e0.len(), 1);
        assert_eq!((e0[0].tick, e0[0].state), (0, "firing"));
        reg.gauge("present").set(1.0);
        store.sample(1, &reg);
        let e1 = engine.evaluate(1, &store, &obs);
        assert_eq!((e1[0].tick, e1[0].state), (1, "resolved"));
        assert!(!engine.any_critical_firing());
    }

    #[test]
    fn rate_rule_breaches_on_counter_slope() {
        let store = store_with(&[(0, 0.0), (1, 0.0), (2, 3.0)], "retries_total", false);
        let mut engine = AlertEngine::new(vec![AlertRule::new(
            "buildup",
            "retries_total",
            AlertKind::RateAbove(0.0),
            Severity::Warning,
        )])
        .expect("engine builds");
        let edges = engine.evaluate(2, &store, &Obs::disabled());
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].value, 3.0);
    }

    #[test]
    fn transitions_are_recorded_as_trace_events() {
        let obs = Obs::enabled();
        let reg = Registry::new();
        let mut store = TimeSeriesStore::new(8);
        let mut engine = AlertEngine::new(vec![AlertRule::new(
            "deg",
            "watch_degraded",
            AlertKind::Above(0.5),
            Severity::Critical,
        )])
        .expect("engine builds");
        reg.gauge("watch_degraded").set(1.0);
        store.sample(0, &reg);
        engine.evaluate(0, &store, &obs);
        assert!(engine.any_critical_firing());
        let line = obs
            .trace_json_lines()
            .lines()
            .find(|l| l.contains("\"alert\""))
            .map(str::to_string)
            .expect("alert event recorded");
        let v: Value = serde_json::from_str(&line).expect("alert event parses");
        let fields = v.get("fields").expect("alert event has fields");
        assert_eq!(fields.get("rule").and_then(Value::as_str), Some("deg"));
        assert_eq!(fields.get("state").and_then(Value::as_str), Some("firing"));
        assert_eq!(
            fields.get("severity").and_then(Value::as_str),
            Some("critical")
        );
    }

    #[test]
    fn builtin_rules_build_and_watch_degraded_cycles() {
        let obs = Obs::enabled();
        let mut monitor = HealthMonitor::with_builtin_rules(32);
        obs.gauge_set("watch_degraded", 0.0);
        assert!(monitor.tick(0, &obs).is_empty());
        obs.gauge_set("watch_degraded", 1.0);
        let fired = monitor.tick(1, &obs);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "watch-degraded");
        assert!(monitor.any_critical_firing());
        obs.gauge_set("watch_degraded", 0.0);
        let resolved = monitor.tick(2, &obs);
        assert_eq!(resolved[0].state, "resolved");
        assert!(!monitor.any_critical_firing());
    }

    #[test]
    fn monitor_is_inert_on_disabled_obs() {
        let mut monitor = HealthMonitor::with_builtin_rules(8);
        assert!(monitor.tick(0, &Obs::disabled()).is_empty());
        assert!(monitor.store().is_empty());
    }

    #[test]
    fn rules_file_round_trip_and_validation() {
        let text = r#"[
            {"name": "qps-stall", "metric": "replay_txns_total", "kind": "rate_above", "bound": 100.0,
             "for_ticks": 3, "severity": "critical"},
            {"name": "no-epochs", "metric": "watch_epochs_total", "kind": "absence"}
        ]"#;
        let rules = rules_from_json(text).expect("valid rules parse");
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].kind, AlertKind::RateAbove(100.0));
        assert_eq!(rules[0].for_ticks, 3);
        assert_eq!(rules[0].severity, Severity::Critical);
        assert_eq!(rules[1].kind, AlertKind::Absence);
        assert_eq!(rules[1].severity, Severity::Warning);

        for bad in [
            r#"{"not": "an array"}"#,
            r#"[{"name": "x", "metric": "m", "kind": "sideways"}]"#,
            r#"[{"name": "x", "metric": "m", "kind": "above"}]"#,
            r#"[{"name": "x", "metric": "m", "kind": "absence"},
                {"name": "x", "metric": "m", "kind": "absence"}]"#,
        ] {
            assert!(rules_from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn health_snapshot_round_trips() {
        let obs = Obs::enabled();
        let mut monitor = HealthMonitor::with_builtin_rules(16);
        obs.gauge_set("watch_degraded", 1.0);
        monitor.tick(0, &obs);
        obs.gauge_set("watch_degraded", 0.0);
        monitor.tick(1, &obs);
        let snap = HealthSnapshot::from_json(&monitor.snapshot_json()).expect("snapshot parses");
        assert_eq!(snap.transitions.len(), 2);
        assert_eq!(snap.transitions[0].1, "watch-degraded");
        assert_eq!(snap.transitions[0].2, "firing");
        assert_eq!(snap.transitions[1].2, "resolved");
        assert!(snap.firing.is_empty());
        assert_eq!(snap.degraded_ticks(), vec![0]);
    }
}
