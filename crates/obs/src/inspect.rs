//! Trace inspection: turns a recorded JSONL trace back into an
//! operator-facing summary (`vpart inspect <trace.jsonl>`).
//!
//! The summarizer understands the span names the instrumented layers
//! emit — `sa_solve`/`sa_chain` (per-chain convergence), `qp_solve`
//! (branch & bound work), `watch_epoch` (online timeline) and
//! `apply_migration` — and degrades gracefully: unknown records still
//! count toward the totals, and sections with no matching spans are
//! omitted.

use std::fmt::Write as _;

use serde_json::Value;

/// One `sa_chain` span, flattened.
#[derive(Debug, Clone, Default)]
pub struct ChainRow {
    /// Chain seed.
    pub seed: u64,
    /// Temperature levels run.
    pub levels: u64,
    /// Proposed moves.
    pub iterations: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// Rejected moves.
    pub rejected: u64,
    /// Full accumulator rebuilds (drift guard + polish adoptions).
    pub resyncs: u64,
    /// Final objective (6) value.
    pub objective6: f64,
    /// Mean absolute accepted delta.
    pub mean_abs_delta: f64,
    /// Chain hit the portfolio probe cut-off.
    pub cut_off: bool,
    /// Chain hit the time limit.
    pub timed_out: bool,
    /// Chain produced the winning partitioning.
    pub winner: bool,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
}

impl ChainRow {
    /// Acceptance ratio over proposed moves (0 when no moves ran).
    pub fn acceptance(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.accepted as f64 / self.iterations as f64
        }
    }
}

/// One `watch_epoch` span, flattened.
#[derive(Debug, Clone, Default)]
pub struct EpochRow {
    /// Epoch index.
    pub epoch: u64,
    /// Drift score against the incumbent.
    pub drift_score: f64,
    /// Margin to the trigger threshold (score − threshold).
    pub margin: f64,
    /// Whether the epoch triggered a re-solve.
    pub triggered: bool,
    /// Whether the watcher was in degraded mode at the end of the epoch.
    pub degraded: bool,
    /// Bytes moved by the epoch's migration (0 when none).
    pub migration_bytes: f64,
    /// Distinct attributes in the tracker snapshot.
    pub snapshot_attrs: u64,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
}

/// One `alert` event (a firing/resolved edge recorded by the alert
/// engine), flattened. The field set mirrors
/// [`AlertTransition`](crate::alerts::AlertTransition) exactly, so a
/// timeline rebuilt from a recorded trace is bit-identical to the one in
/// a live health snapshot.
#[derive(Debug, Clone, Default)]
pub struct AlertEvent {
    /// Microseconds since the trace started.
    pub at_us: u64,
    /// Logical tick (epoch/pass index) of the edge.
    pub tick: u64,
    /// Rule name.
    pub rule: String,
    /// `"firing"` or `"resolved"`.
    pub state: String,
    /// Rule severity (`"warning"` / `"critical"`).
    pub severity: String,
    /// Metric value (or rate) observed at the edge.
    pub value: f64,
}

impl AlertEvent {
    /// The edge as a JSON object in the health-snapshot transition shape
    /// (`tick`, `rule`, `state`, `severity`, `value` — no `at_us`).
    pub fn to_transition_json(&self) -> Value {
        serde_json::json!({
            "tick": self.tick,
            "rule": self.rule.clone(),
            "state": self.state.clone(),
            "severity": self.severity.clone(),
            "value": Value::Float(self.value),
        })
    }
}

/// One `qp_solve` span, flattened.
#[derive(Debug, Clone, Default)]
pub struct QpRow {
    /// Branch & bound nodes explored.
    pub nodes: u64,
    /// Simplex pivots across all LP relaxations.
    pub lp_pivots: u64,
    /// Whether the solve proved optimality.
    pub exact: bool,
    /// Final objective (6) value.
    pub objective6: f64,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
}

/// A parsed and aggregated trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total records in the file.
    pub records: usize,
    /// Span records.
    pub spans: usize,
    /// Event records.
    pub events: usize,
    /// Per-chain convergence rows, in seed order.
    pub chains: Vec<ChainRow>,
    /// Online epoch rows, in epoch order.
    pub epochs: Vec<EpochRow>,
    /// Alert firing/resolved edges, in trace order.
    pub alerts: Vec<AlertEvent>,
    /// QP solve rows, in trace order.
    pub qp: Vec<QpRow>,
    /// Total bytes moved across `apply_migration`, `migrate_batched` and
    /// `rollback_migration` spans.
    pub migration_bytes: f64,
}

fn u(fields: &Value, key: &str) -> u64 {
    fields.get(key).and_then(|v| v.as_u64()).unwrap_or(0)
}

fn f(fields: &Value, key: &str) -> f64 {
    fields.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn b(fields: &Value, key: &str) -> bool {
    fields.get(key).and_then(|v| v.as_bool()).unwrap_or(false)
}

impl TraceSummary {
    /// Parses a JSONL trace. Fails with a line-numbered message on the
    /// first malformed line; blank lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut summary = Self::default();
        let mut winner_seed: Option<u64> = None;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v: Value =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e:?}", lineno + 1))?;
            summary.records += 1;
            let kind = v.get("type").and_then(|t| t.as_str()).unwrap_or("");
            match kind {
                "span" => summary.spans += 1,
                "event" => summary.events += 1,
                other => {
                    return Err(format!(
                        "line {}: unknown record type {other:?}",
                        lineno + 1
                    ))
                }
            }
            let name = v.get("name").and_then(|n| n.as_str()).unwrap_or("");
            let fields = v.get("fields").cloned().unwrap_or(Value::Null);
            if kind != "span" {
                if name == "alert" {
                    let s = |key: &str| {
                        fields
                            .get(key)
                            .and_then(|v| v.as_str())
                            .unwrap_or("")
                            .to_string()
                    };
                    summary.alerts.push(AlertEvent {
                        at_us: u(&v, "at_us"),
                        tick: u(&fields, "tick"),
                        rule: s("rule"),
                        state: s("state"),
                        severity: s("severity"),
                        value: f(&fields, "value"),
                    });
                }
                continue;
            }
            let wall_ms = u(&v, "dur_us") as f64 / 1000.0;
            match name {
                "sa_chain" => summary.chains.push(ChainRow {
                    seed: u(&fields, "seed"),
                    levels: u(&fields, "levels"),
                    iterations: u(&fields, "iterations"),
                    accepted: u(&fields, "accepted"),
                    rejected: u(&fields, "rejected"),
                    resyncs: u(&fields, "resyncs"),
                    objective6: f(&fields, "objective6"),
                    mean_abs_delta: f(&fields, "mean_abs_delta"),
                    cut_off: b(&fields, "cut_off"),
                    timed_out: b(&fields, "timed_out"),
                    winner: false,
                    wall_ms,
                }),
                "sa_solve" if fields.get("winner_seed").is_some() => {
                    winner_seed = Some(u(&fields, "winner_seed"));
                }
                "watch_epoch" => summary.epochs.push(EpochRow {
                    epoch: u(&fields, "epoch"),
                    drift_score: f(&fields, "drift_score"),
                    margin: f(&fields, "margin"),
                    triggered: b(&fields, "triggered"),
                    degraded: b(&fields, "degraded"),
                    migration_bytes: f(&fields, "migration_bytes"),
                    snapshot_attrs: u(&fields, "snapshot_attrs"),
                    wall_ms,
                }),
                "qp_solve" => summary.qp.push(QpRow {
                    nodes: u(&fields, "nodes"),
                    lp_pivots: u(&fields, "lp_pivots"),
                    exact: b(&fields, "exact"),
                    objective6: f(&fields, "objective6"),
                    wall_ms,
                }),
                "apply_migration" => {
                    summary.migration_bytes += f(&fields, "bytes_moved");
                }
                // The crash-safe batched path reports the bytes committed
                // (or re-installed, for rollbacks) by each call.
                "migrate_batched" | "rollback_migration" => {
                    summary.migration_bytes += f(&fields, "bytes_this_run");
                }
                _ => {}
            }
        }
        if let Some(seed) = winner_seed {
            for chain in &mut summary.chains {
                chain.winner = chain.seed == seed;
            }
        }
        summary.chains.sort_by_key(|c| c.seed);
        summary.epochs.sort_by_key(|e| e.epoch);
        Ok(summary)
    }

    /// Rules whose most recent alert edge in the trace is `firing`, in
    /// first-seen order.
    pub fn firing_rules(&self) -> Vec<&str> {
        let mut order: Vec<&str> = Vec::new();
        for a in &self.alerts {
            if !order.contains(&a.rule.as_str()) {
                order.push(&a.rule);
            }
        }
        order.retain(|rule| {
            self.alerts
                .iter()
                .rev()
                .find(|a| a.rule == *rule)
                .is_some_and(|a| a.state == "firing")
        });
        order
    }

    /// Renders the operator-facing text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} records ({} spans, {} events)",
            self.records, self.spans, self.events
        );
        if !self.chains.is_empty() {
            let _ = writeln!(out, "\nper-chain convergence");
            let _ = writeln!(
                out,
                "{:>12} {:>7} {:>9} {:>9} {:>9} {:>6} {:>8} {:>14} {:>9}  flags",
                "seed",
                "levels",
                "moves",
                "accepted",
                "rejected",
                "acc%",
                "resyncs",
                "objective6",
                "wall_ms"
            );
            for c in &self.chains {
                let mut flags = Vec::new();
                if c.winner {
                    flags.push("winner");
                }
                if c.cut_off {
                    flags.push("cut_off");
                }
                if c.timed_out {
                    flags.push("timed_out");
                }
                let _ = writeln!(
                    out,
                    "{:>12} {:>7} {:>9} {:>9} {:>9} {:>5.1}% {:>8} {:>14.3} {:>9.1}  {}",
                    c.seed,
                    c.levels,
                    c.iterations,
                    c.accepted,
                    c.rejected,
                    100.0 * c.acceptance(),
                    c.resyncs,
                    c.objective6,
                    c.wall_ms,
                    flags.join(","),
                );
            }
        }
        if !self.epochs.is_empty() {
            let _ = writeln!(out, "\nepoch timeline");
            let _ = writeln!(
                out,
                "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>15} {:>14}",
                "epoch",
                "wall_ms",
                "drift",
                "margin",
                "trigger",
                "degraded",
                "migrated_bytes",
                "snapshot_attrs"
            );
            for e in &self.epochs {
                let _ = writeln!(
                    out,
                    "{:>5} {:>9.1} {:>9.4} {:>+9.4} {:>9} {:>9} {:>15.0} {:>14}",
                    e.epoch,
                    e.wall_ms,
                    e.drift_score,
                    e.margin,
                    if e.triggered { "yes" } else { "no" },
                    if e.degraded { "yes" } else { "no" },
                    e.migration_bytes,
                    e.snapshot_attrs,
                );
            }
            let _ = writeln!(
                out,
                "total migrated: {:.0} bytes over {} epochs ({} triggered, {} degraded)",
                self.migration_bytes,
                self.epochs.len(),
                self.epochs.iter().filter(|e| e.triggered).count(),
                self.epochs.iter().filter(|e| e.degraded).count(),
            );
        }
        if !self.alerts.is_empty() {
            let _ = writeln!(out, "\nalert timeline");
            let _ = writeln!(
                out,
                "{:>6} {:>10} {:>9}  {:<28} {:>12}",
                "tick", "state", "severity", "rule", "value"
            );
            for a in &self.alerts {
                let _ = writeln!(
                    out,
                    "{:>6} {:>10} {:>9}  {:<28} {:>12.4}",
                    a.tick, a.state, a.severity, a.rule, a.value,
                );
            }
            let firing: Vec<&str> = self.firing_rules();
            if firing.is_empty() {
                let _ = writeln!(out, "all alerts resolved at end of trace");
            } else {
                let _ = writeln!(out, "still firing: {}", firing.join(", "));
            }
        }
        for q in &self.qp {
            let _ = writeln!(
                out,
                "\nqp solve: {} branch nodes, {} lp pivots, exact={}, objective6={:.3}, wall_ms={:.1}",
                q.nodes, q.lp_pivots, q.exact, q.objective6, q.wall_ms
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn round_trips_a_recorded_trace() {
        let obs = Obs::enabled();
        let solve = obs.span_begin("sa_solve", &[]);
        for seed in [3u64, 1u64] {
            let scoped = obs.under(&solve);
            let chain = scoped.span_begin("sa_chain", &[("seed", seed.into())]);
            scoped.span_end(
                chain,
                &[
                    ("seed", seed.into()),
                    ("levels", 4u64.into()),
                    ("iterations", 100u64.into()),
                    ("accepted", 25u64.into()),
                    ("rejected", 75u64.into()),
                    ("resyncs", 1u64.into()),
                    ("objective6", 42.5f64.into()),
                    ("cut_off", (seed == 3).into()),
                    ("timed_out", false.into()),
                ],
            );
        }
        obs.span_end(solve, &[("winner_seed", 1u64.into())]);

        let summary = TraceSummary::from_jsonl(&obs.trace_json_lines()).unwrap();
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.chains.len(), 2);
        // Sorted by seed; winner resolved from the sa_solve span.
        assert_eq!(summary.chains[0].seed, 1);
        assert!(summary.chains[0].winner);
        assert!(!summary.chains[1].winner);
        assert!(summary.chains[1].cut_off);
        assert!((summary.chains[0].acceptance() - 0.25).abs() < 1e-12);

        let text = summary.render();
        assert!(text.contains("per-chain convergence"));
        assert!(text.contains("winner"));
        assert!(text.contains("cut_off"));
    }

    #[test]
    fn summarizes_epochs_and_migrations() {
        let obs = Obs::enabled();
        let epoch = obs.span_begin("watch_epoch", &[]);
        let scoped = obs.under(&epoch);
        let mig = scoped.span_begin("apply_migration", &[]);
        scoped.span_end(mig, &[("bytes_moved", 2048.0f64.into())]);
        obs.span_end(
            epoch,
            &[
                ("epoch", 0u64.into()),
                ("drift_score", 0.3f64.into()),
                ("margin", 0.05f64.into()),
                ("triggered", true.into()),
                ("migration_bytes", 2048.0f64.into()),
                ("snapshot_attrs", 12u64.into()),
            ],
        );
        let summary = TraceSummary::from_jsonl(&obs.trace_json_lines()).unwrap();
        assert_eq!(summary.epochs.len(), 1);
        assert!(summary.epochs[0].triggered);
        assert_eq!(summary.migration_bytes, 2048.0);
        assert!(summary.render().contains("epoch timeline"));
    }

    #[test]
    fn parses_alert_events_into_a_timeline() {
        let obs = Obs::enabled();
        obs.event(
            "alert",
            &[
                ("tick", 3u64.into()),
                ("rule", "watch-degraded".into()),
                ("state", "firing".into()),
                ("severity", "critical".into()),
                ("value", 1.0f64.into()),
            ],
        );
        obs.event("checkpoint", &[("k", 1u64.into())]);
        obs.event(
            "alert",
            &[
                ("tick", 7u64.into()),
                ("rule", "watch-degraded".into()),
                ("state", "resolved".into()),
                ("severity", "critical".into()),
                ("value", 0.0f64.into()),
            ],
        );
        let summary = TraceSummary::from_jsonl(&obs.trace_json_lines()).unwrap();
        assert_eq!(summary.events, 3);
        assert_eq!(summary.alerts.len(), 2);
        assert_eq!(summary.alerts[0].tick, 3);
        assert_eq!(summary.alerts[0].state, "firing");
        assert_eq!(summary.alerts[1].state, "resolved");
        assert!(summary.firing_rules().is_empty());
        let text = summary.render();
        assert!(text.contains("alert timeline"), "{text}");
        assert!(text.contains("watch-degraded"), "{text}");
        assert!(text.contains("all alerts resolved"), "{text}");

        // The transition shape matches the live snapshot exactly.
        let json = serde_json::to_string(&summary.alerts[0].to_transition_json()).unwrap();
        assert_eq!(
            json,
            "{\"tick\":3,\"rule\":\"watch-degraded\",\"state\":\"firing\",\"severity\":\"critical\",\"value\":1}"
        );
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        let err = TraceSummary::from_jsonl("{\"type\":\"span\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = TraceSummary::from_jsonl("{\"type\":\"mystery\"}\n").unwrap_err();
        assert!(err.contains("unknown record type"), "{err}");
    }

    #[test]
    fn empty_trace_summarizes_cleanly() {
        let summary = TraceSummary::from_jsonl("\n\n").unwrap();
        assert_eq!(summary.records, 0);
        assert!(summary.render().starts_with("trace: 0 records"));
    }
}
