//! A fixed-capacity time-series ring over the metrics registry.
//!
//! [`TimeSeriesStore`] samples a [`Registry`] on
//! a **logical** clock — the epoch index for `vpart watch`, the pass index
//! for `vpart replay` — never the wall clock (the workspace `determinism`
//! lint bans wall-clock reads on the solver path, and logical ticks make
//! snapshots reproducible: the same trace of operations yields the same
//! bytes). Each sample captures every counter and gauge (histograms fold
//! in as `<name>_count` / `<name>_sum` counters); the store derives
//! per-tick counter rates and gauge deltas between consecutive samples,
//! and exports a JSON snapshot plus a Prometheus-style exposition of the
//! most recent window.
//!
//! The ring is bounded: once `capacity` samples are held, the oldest is
//! evicted (and counted in [`TimeSeriesStore::evicted`]), so a
//! long-running watch loop holds a sliding window, not an unbounded log.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use serde_json::Value;

use crate::metrics::Registry;

/// One logical-clock sample of the registry: every counter and gauge
/// value at a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSample {
    /// Logical timestamp (epoch index for watch, pass index for replay).
    pub tick: u64,
    /// Counter values by rendered series name (monotone non-decreasing).
    pub counters: BTreeMap<String, f64>,
    /// Gauge values by rendered series name.
    pub gauges: BTreeMap<String, f64>,
}

/// The fixed-capacity ring of samples (see module docs).
#[derive(Debug, Clone)]
pub struct TimeSeriesStore {
    capacity: usize,
    samples: VecDeque<SeriesSample>,
    evicted: u64,
}

impl TimeSeriesStore {
    /// A store holding at most `capacity` samples (clamped to ≥ 2 so
    /// rates and deltas are always derivable at the head).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(2),
            samples: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Maximum samples held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted by the ring bound over the store's lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<&SeriesSample> {
        self.samples.back()
    }

    /// The samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &SeriesSample> {
        self.samples.iter()
    }

    /// Captures the registry's counters and gauges at logical time
    /// `tick`. Histograms contribute `<name>_count` and `<name>_sum`
    /// counter series (both monotone). Ticks must be given in
    /// non-decreasing order; a sample at a tick already at the head
    /// replaces it (a re-sample within the same epoch).
    pub fn sample(&mut self, tick: u64, registry: &Registry) {
        let snap = registry.snapshot_json();
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let scalar_map = |v: Option<&Value>| -> Vec<(String, f64)> {
            v.and_then(Value::as_object)
                .map(|fields| {
                    fields
                        .iter()
                        .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                        .collect()
                })
                .unwrap_or_default()
        };
        counters.extend(scalar_map(snap.get("counters")));
        gauges.extend(scalar_map(snap.get("gauges")));
        if let Some(hists) = snap.get("histograms").and_then(Value::as_object) {
            for (name, h) in hists {
                if let Some(count) = h.get("count").and_then(Value::as_f64) {
                    counters.insert(format!("{name}_count"), count);
                }
                if let Some(sum) = h.get("sum").and_then(Value::as_f64) {
                    counters.insert(format!("{name}_sum"), sum);
                }
            }
        }
        self.record(tick, counters, gauges);
    }

    /// Appends a pre-built sample (the reconstruction path: `vpart
    /// monitor` rebuilds a store from a recorded trace or a health
    /// snapshot instead of a live registry).
    pub fn record(
        &mut self,
        tick: u64,
        counters: BTreeMap<String, f64>,
        gauges: BTreeMap<String, f64>,
    ) {
        let sample = SeriesSample {
            tick,
            counters,
            gauges,
        };
        if self.samples.back().is_some_and(|s| s.tick == tick) {
            // Re-sample of the head tick: replace, don't duplicate.
            self.samples.pop_back();
        }
        self.samples.push_back(sample);
        while self.samples.len() > self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
    }

    /// The newest value of `metric` — gauges take precedence, then
    /// counters (including the derived histogram `_count`/`_sum` series).
    pub fn value(&self, metric: &str) -> Option<f64> {
        let s = self.samples.back()?;
        s.gauges
            .get(metric)
            .or_else(|| s.counters.get(metric))
            .copied()
    }

    /// The per-tick rate of counter `metric` at the head: `(vₙ − vₙ₋₁) /
    /// (tickₙ − tickₙ₋₁)`. `None` until two samples exist; a counter
    /// first seen at the head rates from an implicit 0.
    pub fn counter_rate(&self, metric: &str) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let (prev, cur) = (&self.samples[n - 2], &self.samples[n - 1]);
        let v = *cur.counters.get(metric)?;
        let base = prev.counters.get(metric).copied().unwrap_or(0.0);
        let dt = cur.tick.saturating_sub(prev.tick).max(1) as f64;
        Some((v - base) / dt)
    }

    /// The per-tick delta of gauge `metric` at the head. `None` until the
    /// gauge has appeared in two consecutive samples.
    pub fn gauge_delta(&self, metric: &str) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let (prev, cur) = (&self.samples[n - 2], &self.samples[n - 1]);
        Some(*cur.gauges.get(metric)? - *prev.gauges.get(metric)?)
    }

    /// All counter rates at the head sample, in series order.
    pub fn rates(&self) -> BTreeMap<String, f64> {
        let Some(cur) = self.samples.back() else {
            return BTreeMap::new();
        };
        cur.counters
            .keys()
            .filter_map(|k| self.counter_rate(k).map(|r| (k.clone(), r)))
            .collect()
    }

    /// Deterministic JSON snapshot of the whole ring: capacity, eviction
    /// count, and each sample with its derived rates and gauge deltas
    /// (computed against the in-ring predecessor; the oldest sample has
    /// none). Equal operation histories produce byte-identical snapshots.
    pub fn snapshot_json(&self) -> Value {
        let samples: Vec<Value> = self
            .samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let num_map = |m: &BTreeMap<String, f64>| {
                    Value::Object(
                        m.iter()
                            .map(|(k, v)| (k.clone(), Value::Float(*v)))
                            .collect(),
                    )
                };
                let prev = i.checked_sub(1).map(|j| &self.samples[j]);
                let dt = prev
                    .map(|p| s.tick.saturating_sub(p.tick).max(1) as f64)
                    .unwrap_or(1.0);
                let rates: BTreeMap<String, f64> = match prev {
                    None => BTreeMap::new(),
                    Some(p) => s
                        .counters
                        .iter()
                        .map(|(k, v)| {
                            (
                                k.clone(),
                                (v - p.counters.get(k).copied().unwrap_or(0.0)) / dt,
                            )
                        })
                        .collect(),
                };
                let deltas: BTreeMap<String, f64> = match prev {
                    None => BTreeMap::new(),
                    Some(p) => s
                        .gauges
                        .iter()
                        .filter_map(|(k, v)| p.gauges.get(k).map(|pv| (k.clone(), v - pv)))
                        .collect(),
                };
                serde_json::json!({
                    "tick": s.tick,
                    "counters": num_map(&s.counters),
                    "gauges": num_map(&s.gauges),
                    "rates": num_map(&rates),
                    "deltas": num_map(&deltas),
                })
            })
            .collect();
        serde_json::json!({
            "capacity": self.capacity,
            "evicted": self.evicted,
            "samples": Value::Array(samples),
        })
    }

    /// Rebuilds a store from [`TimeSeriesStore::snapshot_json`] output
    /// (rates and deltas are re-derived, not trusted).
    pub fn from_snapshot_json(v: &Value) -> Result<Self, String> {
        let capacity = v
            .get("capacity")
            .and_then(Value::as_u64)
            .ok_or("snapshot has no \"capacity\"")? as usize;
        let mut store = Self::new(capacity);
        store.evicted = v.get("evicted").and_then(Value::as_u64).unwrap_or(0);
        let samples = v
            .get("samples")
            .and_then(Value::as_array)
            .ok_or("snapshot has no \"samples\" array")?;
        for (i, s) in samples.iter().enumerate() {
            let tick = s
                .get("tick")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("sample {i} has no \"tick\""))?;
            let scalar_map = |key: &str| -> BTreeMap<String, f64> {
                s.get(key)
                    .and_then(Value::as_object)
                    .map(|fields| {
                        fields
                            .iter()
                            .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                            .collect()
                    })
                    .unwrap_or_default()
            };
            store.record(tick, scalar_map("counters"), scalar_map("gauges"));
        }
        Ok(store)
    }

    /// Prometheus-style text exposition of the most recent `window`
    /// samples: each series prints one line per tick with a `tick` label,
    /// and counter rates print as derived `<name>_per_tick` gauges.
    /// Deterministically ordered (series name, then tick).
    pub fn render_window(&self, window: usize) -> String {
        let n = self.samples.len();
        let start = n.saturating_sub(window.max(1));
        let recent: Vec<&SeriesSample> = self.samples.iter().skip(start).collect();
        let mut out = String::new();
        if recent.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "# window ticks {}..{} ({} of {} samples, {} evicted)",
            recent[0].tick,
            recent[recent.len() - 1].tick,
            recent.len(),
            n,
            self.evicted
        );
        let mut counter_names: Vec<&str> = Vec::new();
        let mut gauge_names: Vec<&str> = Vec::new();
        for s in &recent {
            for k in s.counters.keys() {
                if !counter_names.contains(&k.as_str()) {
                    counter_names.push(k);
                }
            }
            for k in s.gauges.keys() {
                if !gauge_names.contains(&k.as_str()) {
                    gauge_names.push(k);
                }
            }
        }
        counter_names.sort_unstable();
        gauge_names.sort_unstable();
        for name in counter_names {
            let _ = writeln!(out, "# TYPE {name} counter");
            for s in &recent {
                if let Some(v) = s.counters.get(name) {
                    let _ = writeln!(out, "{name}{{tick=\"{}\"}} {v}", s.tick);
                }
            }
            let _ = writeln!(out, "# TYPE {name}_per_tick gauge");
            for pair in recent.windows(2) {
                if let Some(v) = pair[1].counters.get(name) {
                    let base = pair[0].counters.get(name).copied().unwrap_or(0.0);
                    let dt = pair[1].tick.saturating_sub(pair[0].tick).max(1) as f64;
                    let _ = writeln!(
                        out,
                        "{name}_per_tick{{tick=\"{}\"}} {}",
                        pair[1].tick,
                        (v - base) / dt
                    );
                }
            }
        }
        for name in gauge_names {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for s in &recent {
                if let Some(v) = s.gauges.get(name) {
                    let _ = writeln!(out, "{name}{{tick=\"{}\"}} {v}", s.tick);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(counter: f64, gauge: f64) -> Registry {
        let reg = Registry::new();
        reg.counter("ops_total").add(counter);
        reg.gauge("depth").set(gauge);
        reg
    }

    #[test]
    fn samples_capture_counters_gauges_and_histogram_folds() {
        let reg = reg_with(10.0, 2.5);
        reg.histogram("lat", &[1.0]).observe(0.5);
        let mut store = TimeSeriesStore::new(8);
        store.sample(0, &reg);
        let s = store.latest().expect("one sample");
        assert_eq!(s.counters.get("ops_total"), Some(&10.0));
        assert_eq!(s.counters.get("lat_count"), Some(&1.0));
        assert_eq!(s.counters.get("lat_sum"), Some(&0.5));
        assert_eq!(s.gauges.get("depth"), Some(&2.5));
        assert_eq!(store.value("depth"), Some(2.5));
    }

    #[test]
    fn rates_and_deltas_derive_from_consecutive_ticks() {
        let reg = reg_with(10.0, 1.0);
        let mut store = TimeSeriesStore::new(8);
        store.sample(0, &reg);
        assert_eq!(store.counter_rate("ops_total"), None, "one sample, no rate");
        reg.counter("ops_total").add(6.0);
        reg.gauge("depth").set(4.0);
        store.sample(2, &reg);
        // Δv = 6 over Δtick = 2.
        assert_eq!(store.counter_rate("ops_total"), Some(3.0));
        assert_eq!(store.gauge_delta("depth"), Some(3.0));
        assert_eq!(store.rates().get("ops_total"), Some(&3.0));
    }

    #[test]
    fn ring_wraps_and_counts_evictions() {
        let reg = Registry::new();
        let mut store = TimeSeriesStore::new(3);
        for t in 0..10 {
            reg.counter("ops_total").inc();
            store.sample(t, &reg);
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.evicted(), 7);
        let ticks: Vec<u64> = store.samples().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![7, 8, 9]);
        // Rates still derive at the head after wrapping.
        assert_eq!(store.counter_rate("ops_total"), Some(1.0));
    }

    #[test]
    fn resampling_the_head_tick_replaces_it() {
        let reg = reg_with(1.0, 0.0);
        let mut store = TimeSeriesStore::new(4);
        store.sample(0, &reg);
        reg.counter("ops_total").add(1.0);
        store.sample(0, &reg);
        assert_eq!(store.len(), 1);
        assert_eq!(store.value("ops_total"), Some(2.0));
    }

    #[test]
    fn snapshot_is_deterministic_and_round_trips() {
        let run = || {
            let reg = Registry::new();
            let mut store = TimeSeriesStore::new(4);
            for t in 0..6u64 {
                reg.counter("ops_total").add(t as f64);
                reg.gauge("depth").set(t as f64 * 0.5);
                store.sample(t, &reg);
            }
            store
        };
        let (a, b) = (run(), run());
        let (ja, jb) = (
            serde_json::to_string(&a.snapshot_json()).expect("snapshot serializes"),
            serde_json::to_string(&b.snapshot_json()).expect("snapshot serializes"),
        );
        assert_eq!(ja, jb, "equal histories must snapshot byte-identically");

        let back = TimeSeriesStore::from_snapshot_json(&a.snapshot_json()).expect("round-trips");
        assert_eq!(
            serde_json::to_string(&back.snapshot_json()).expect("snapshot serializes"),
            ja,
            "snapshot → store → snapshot must be lossless"
        );
    }

    #[test]
    fn window_exposition_renders_rates() {
        let reg = Registry::new();
        let mut store = TimeSeriesStore::new(8);
        for t in 0..3u64 {
            reg.counter("ops_total").add(2.0);
            reg.gauge("depth").set(t as f64);
            store.sample(t, &reg);
        }
        let text = store.render_window(2);
        assert!(text.contains("# window ticks 1..2"), "{text}");
        assert!(text.contains("ops_total{tick=\"2\"} 6"), "{text}");
        assert!(text.contains("ops_total_per_tick{tick=\"2\"} 2"), "{text}");
        assert!(text.contains("depth{tick=\"1\"} 1"), "{text}");
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        for bad in [
            "{}",
            r#"{"capacity": 4}"#,
            r#"{"capacity": 4, "samples": [{"counters": {}}]}"#,
        ] {
            let v: Value = serde_json::from_str(bad).expect("test JSON parses");
            assert!(TimeSeriesStore::from_snapshot_json(&v).is_err(), "{bad}");
        }
    }
}
