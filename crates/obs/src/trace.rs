//! Structured span/event tracing with a JSONL sink.
//!
//! A trace is a flat sequence of records, one JSON object per line:
//!
//! ```text
//! {"type":"span","id":3,"parent":1,"name":"sa_chain","start_us":12,"dur_us":3400,"fields":{...}}
//! {"type":"event","parent":3,"name":"sa_level","at_us":940,"fields":{...}}
//! ```
//!
//! Spans nest through `parent` ids; timestamps are microseconds since the
//! [`Obs`](crate::Obs) handle was enabled. Records are appended when a span
//! *ends* (so a parent span serializes after its children — readers
//! reconstruct the tree from ids, not from line order).

use serde_json::Value;

/// A field value attached to a span or event. Instrumented crates build
/// these through `From` impls (`("seed", seed.into())`) so call sites never
/// need `serde_json` directly.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Free text.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        Self::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> Value {
        match self {
            Self::Bool(b) => Value::Bool(*b),
            Self::U64(u) => Value::UInt(*u),
            Self::I64(i) => Value::Int(*i),
            Self::F64(f) => Value::Float(*f),
            Self::Str(s) => Value::String(s.clone()),
        }
    }
}

/// A completed trace record (span or event), ready to serialize.
#[derive(Debug, Clone)]
pub enum Record {
    /// A timed, possibly nested unit of work.
    Span {
        /// Unique id within the trace.
        id: u64,
        /// Enclosing span id; 0 when top-level.
        parent: u64,
        /// Span name (e.g. `sa_chain`).
        name: String,
        /// Start, microseconds since obs enable.
        start_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
        /// Key/value payload.
        fields: Vec<(String, FieldValue)>,
    },
    /// An instantaneous annotation inside a span.
    Event {
        /// Enclosing span id; 0 when top-level.
        parent: u64,
        /// Event name (e.g. `sa_level`).
        name: String,
        /// Timestamp, microseconds since obs enable.
        at_us: u64,
        /// Key/value payload.
        fields: Vec<(String, FieldValue)>,
    },
}

impl Record {
    /// One JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let fields_json = |fields: &[(String, FieldValue)]| {
            Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            )
        };
        let v = match self {
            Self::Span {
                id,
                parent,
                name,
                start_us,
                dur_us,
                fields,
            } => serde_json::json!({
                "type": "span",
                "id": *id,
                "parent": *parent,
                "name": name.as_str(),
                "start_us": *start_us,
                "dur_us": *dur_us,
                "fields": fields_json(fields),
            }),
            Self::Event {
                parent,
                name,
                at_us,
                fields,
            } => serde_json::json!({
                "type": "event",
                "parent": *parent,
                "name": name.as_str(),
                "at_us": *at_us,
                "fields": fields_json(fields),
            }),
        };
        v.to_string()
    }
}

/// An in-flight span handle returned by
/// [`Obs::span_begin`](crate::Obs::span_begin). Dropping it without calling
/// `span_end` discards the span (no record is written); spans are explicit
/// because most instrumented layers close them with result fields.
#[derive(Debug)]
pub struct Span {
    pub(crate) id: u64,
    pub(crate) parent: u64,
    pub(crate) name: String,
    pub(crate) start_us: u64,
}

impl Span {
    /// The span's trace id (stable for the lifetime of the trace).
    pub fn id(&self) -> u64 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_parseable_json() {
        let span = Record::Span {
            id: 3,
            parent: 1,
            name: "sa_chain".into(),
            start_us: 12,
            dur_us: 3400,
            fields: vec![
                ("seed".into(), 7u64.into()),
                ("objective6".into(), 1.5f64.into()),
                ("cut_off".into(), false.into()),
                ("note".into(), "warm".into()),
            ],
        };
        let line = span.to_json_line();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("span"));
        assert_eq!(v.get("id").and_then(|t| t.as_u64()), Some(3));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("seed").and_then(|s| s.as_u64()), Some(7));
        assert_eq!(fields.get("objective6").and_then(|s| s.as_f64()), Some(1.5));

        let event = Record::Event {
            parent: 3,
            name: "sa_level".into(),
            at_us: 940,
            fields: vec![("tau".into(), 0.5f64.into())],
        };
        let v: Value = serde_json::from_str(&event.to_json_line()).unwrap();
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("event"));
        assert_eq!(v.get("at_us").and_then(|t| t.as_u64()), Some(940));
    }
}
