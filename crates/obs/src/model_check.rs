//! Exhaustive interleaving checks for the metrics registry's lock-free
//! hot paths (compiled only under the `model-check` feature).
//!
//! The registry promises that recording never blocks on another writer
//! and that snapshots are internally consistent. Those are concurrency
//! claims, and unit tests that merely hammer threads at them only sample
//! a few schedules. This module instead runs the **real registry code**
//! under the vendored [`interleave`] explorer (a `loom`-style
//! deterministic scheduler): [`crate::sync`] swaps the registry's atomics
//! and locks for shims whose every operation is a scheduling point, and
//! `interleave::model` re-executes each scenario under *every* reachable
//! thread interleaving, failing with the offending schedule if any
//! execution violates an assertion or deadlocks.
//!
//! Three scenarios are covered, one per lock-free protocol in
//! [`crate::metrics`]:
//!
//! * [`check_counter_cas`] — two racing [`crate::Counter::add`]s drive
//!   the f64-in-`AtomicU64` CAS loop; no update may be lost.
//! * [`check_histogram_snapshot`] — a writer races
//!   [`crate::Histogram::observe`] against a snapshotting reader; every
//!   snapshot must satisfy `count == Σ buckets` and monotonicity. This
//!   check **found a real bug**: the registry used to keep a separate
//!   `count` atomic incremented after the bucket cell, and schedules
//!   existed where a snapshot read one increment but not the other. The
//!   count is now derived from the bucket cells themselves
//!   ([`crate::HistogramSnapshot`]), which this check proves sufficient.
//! * [`check_interning`] — two threads intern the same series name
//!   through the `RwLock` read-lock fast path; both must end up with the
//!   same underlying cell and no increment may be lost.
//!
//! Run with `cargo test -p vpart_obs --features model-check`. The
//! explorer bounds work per scenario (hundreds to a few thousand
//! executions); each check completes in well under a second.

use std::sync::Arc;

use crate::metrics::Registry;

/// Exhaustively verifies the counter CAS loop: two concurrent `add(1)`
/// calls always sum — the compare-exchange retry protocol never loses an
/// update under any interleaving.
pub fn check_counter_cas() {
    interleave::model(|| {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("hits_total");
        let t = {
            let c = c.clone();
            interleave::thread::spawn(move || c.add(1.0))
        };
        c.add(1.0);
        t.join().expect("counter writer panicked");
        assert_eq!(c.get(), 2.0, "lost counter update");
    });
}

/// Exhaustively verifies histogram snapshot consistency while a writer
/// races a reader: in **every** interleaving, each snapshot's derived
/// count equals its `+Inf` cumulative bucket and never exceeds the number
/// of observations started.
pub fn check_histogram_snapshot() {
    interleave::model(|| {
        let reg = Arc::new(Registry::new());
        let h = reg.histogram("lat", &[1.0, 5.0]);
        let writer = {
            let h = h.clone();
            interleave::thread::spawn(move || {
                h.observe(0.5); // bucket 0
                h.observe(9.0); // +Inf bucket
            })
        };
        // Snapshot concurrently with the writes.
        let snap = h.snapshot();
        let bucket_sum = snap.cumulative.last().map(|(_, c)| *c).unwrap_or(0);
        assert_eq!(
            snap.count, bucket_sum,
            "snapshot count must equal the bucket sum: {snap:?}"
        );
        assert!(snap.count <= 2, "count beyond observations: {snap:?}");
        // Cumulative entries are non-decreasing by construction of the
        // single pass; check anyway to pin the invariant.
        assert!(
            snap.cumulative.windows(2).all(|w| w[0].1 <= w[1].1),
            "cumulative counts must be monotone: {snap:?}"
        );
        writer.join().expect("histogram writer panicked");
        // Quiescent state: everything visible and consistent.
        let final_snap = h.snapshot();
        assert_eq!(final_snap.count, 2);
        assert_eq!(final_snap.cumulative[0].1, 1);
        assert_eq!(final_snap.cumulative[2].1, 2);
    });
}

/// Exhaustively verifies series interning through the read-lock fast
/// path: two threads asking for the same counter name — both potentially
/// missing the read-locked lookup and racing the write-locked insert —
/// must get the *same* cell, so neither increment is lost and exactly one
/// series exists afterwards.
pub fn check_interning() {
    interleave::model(|| {
        let reg = Arc::new(Registry::new());
        let t = {
            let reg = reg.clone();
            interleave::thread::spawn(move || reg.counter("shared_total").inc())
        };
        reg.counter("shared_total").inc();
        t.join().expect("interning thread panicked");
        assert_eq!(
            reg.counter("shared_total").get(),
            2.0,
            "racing interns must resolve to one cell"
        );
        let snap = reg.snapshot_json();
        let counters = snap
            .get("counters")
            .and_then(|c| c.as_object())
            .map(|o| o.len())
            .unwrap_or(0);
        assert_eq!(counters, 1, "duplicate series interned");
    });
}

#[cfg(test)]
mod tests {
    use interleave::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn counter_cas_loop_is_lossless_under_all_interleavings() {
        super::check_counter_cas();
    }

    /// Sensitivity check: the explorer must still be able to *find* the
    /// bug the histogram used to have. This replays the legacy protocol —
    /// a separate count atomic incremented after the bucket cell — and
    /// asserts the checker produces a schedule where a snapshot reads
    /// `count != bucket`.
    #[test]
    fn explorer_finds_the_legacy_split_count_race() {
        let r = std::panic::catch_unwind(|| {
            interleave::model(|| {
                let bucket = Arc::new(AtomicU64::new(0));
                let count = Arc::new(AtomicU64::new(0));
                let writer = {
                    let (bucket, count) = (bucket.clone(), count.clone());
                    interleave::thread::spawn(move || {
                        bucket.fetch_add(1, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    })
                };
                // Legacy snapshot order: buckets first, then count.
                let b = bucket.load(Ordering::Relaxed);
                let c = count.load(Ordering::Relaxed);
                writer.join().expect("writer panicked");
                assert_eq!(c, b, "snapshot tearing: count {c} != bucket sum {b}");
            });
        });
        assert!(
            r.is_err(),
            "the explorer failed to find the legacy count/bucket race"
        );
    }

    #[test]
    fn histogram_snapshots_are_consistent_under_all_interleavings() {
        super::check_histogram_snapshot();
    }

    #[test]
    fn series_interning_is_race_free_under_all_interleavings() {
        super::check_interning();
    }
}
