//! A lock-cheap metrics registry: counters, gauges and fixed-bucket
//! histograms with Prometheus-style text exposition and a JSON snapshot.
//!
//! All three metric kinds store `f64` values in `AtomicU64` bit patterns,
//! so recording never blocks on another writer: increments are a CAS loop
//! on the atomic, and the registry's maps are only write-locked the first
//! time a new `(name, labels)` series appears. Callers on a hot path can
//! hold on to the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles and
//! skip the map lookup entirely.
//!
//! Exposition is deterministic: series print in `BTreeMap` order (name,
//! then labels), histograms print cumulative `le` buckets plus `_sum` and
//! `_count` — the text format a future `vpart serve` can return verbatim
//! from `GET /metrics`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::RwLock;

/// A metric series identifier: a name plus ordered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric name (`snake_case`, `_total` suffix for counters by
    /// convention).
    pub name: String,
    /// Label pairs, in exposition order.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        Self {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// `name{k="v",...}` (no braces when unlabeled).
    fn render(&self) -> String {
        render_series(&self.name, &self.labels, &[])
    }
}

/// Renders `name{labels...,extra...}`; no braces when both are empty.
fn render_series(name: &str, labels: &[(String, String)], extra: &[(&str, String)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().map(|(k, v)| (*k, v.as_str())))
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

/// An `f64` stored in an `AtomicU64` bit pattern.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn get(&self) -> f64 {
        // ordering: Relaxed — a single self-contained cell; readers need
        // no happens-before edge with other memory, only the latest-ish
        // value of this one scalar.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        // ordering: Relaxed — gauge sets publish one scalar, nothing else.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Lock-free add via a CAS loop (exhaustively checked in
    /// `model_check` (the `model-check` feature): no update is ever lost under any
    /// interleaving).
    fn add(&self, delta: f64) {
        // ordering: Relaxed — the CAS loop's correctness comes from the
        // compare-exchange success/retry protocol itself, not from
        // fencing; no other memory is published alongside the value.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A monotonically increasing series (use [`Counter::add`] with
/// non-negative deltas).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicF64>);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: f64) {
        self.0.add(delta);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// A set-to-current-value series.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicF64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// A fixed-bucket histogram. Buckets hold *non*-cumulative counts
/// internally; exposition renders the Prometheus cumulative `le` form. A
/// value lands in the first bucket whose upper bound is `>=` the value
/// (inclusive, like Prometheus `le`), or in the implicit `+Inf` bucket.
///
/// The total observation count is **derived from the bucket cells**, not
/// stored separately: an earlier revision kept a second `count` atomic
/// incremented after the bucket, and the `model_check` (the `model-check` feature) explorer
/// found interleavings where a snapshot read `count != Σ buckets` (the
/// reader ran between the two increments). Deriving the count from the
/// same single pass that reads the buckets makes `count == Σ buckets`
/// hold in every snapshot by construction, with no ordering requirements.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicF64,
}

/// One consistent read of a [`Histogram`]: every field is derived from a
/// single pass over the bucket cells, so `count` always equals the
/// `+Inf` cumulative entry. `sum` may trail in-flight observations — the
/// inherent slack of lock-free recording — but never includes a value
/// whose bucket increment this snapshot missed *and* vice versa beyond
/// that one in-flight observation per writer.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Cumulative `(upper_bound, count)` pairs ending with `(+Inf, total)`.
    pub cumulative: Vec<(f64, u64)>,
    /// Total observations (`Σ buckets`, i.e. the `+Inf` entry).
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicF64::default(),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        // ordering: Relaxed — each bucket is an independent monotonic
        // cell; snapshot consistency (count == Σ buckets) is structural
        // (count is derived from the bucket reads), not fencing-based.
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
    }

    /// A consistent one-pass read of the histogram (see
    /// [`HistogramSnapshot`] for its guarantees).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut acc = 0u64;
        let mut cumulative = Vec::with_capacity(self.buckets.len());
        for (i, slot) in self.buckets.iter().enumerate() {
            // ordering: Relaxed — one read per cell; the derived count
            // uses these same reads, so no cross-cell ordering is needed.
            acc += slot.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            cumulative.push((bound, acc));
        }
        HistogramSnapshot {
            cumulative,
            count: acc,
            sum: self.sum.get(),
        }
    }

    /// Total observations (derived from the buckets).
    pub fn count(&self) -> u64 {
        self.snapshot().count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Cumulative `(upper_bound, count)` pairs ending with `(+Inf, total)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        self.snapshot().cumulative
    }
}

/// Default wall-clock buckets (seconds) for solve/epoch timing histograms.
pub const WALL_SECONDS_BUCKETS: &[f64] = &[
    0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 300.0,
];

/// The metrics registry (see module docs).
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<SeriesKey, Arc<AtomicF64>>>,
    gauges: RwLock<BTreeMap<SeriesKey, Arc<AtomicF64>>>,
    histograms: RwLock<BTreeMap<SeriesKey, Arc<Histogram>>>,
}

/// Looks `key` up under a read lock, inserting with `init` under the
/// write lock only on first use.
fn intern<V: Clone>(
    map: &RwLock<BTreeMap<SeriesKey, V>>,
    key: SeriesKey,
    init: impl FnOnce() -> V,
) -> V {
    if let Some(v) = map.read().expect("metrics lock").get(&key) {
        return v.clone();
    }
    map.write()
        .expect("metrics lock")
        .entry(key)
        .or_insert_with(init)
        .clone()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter series `name` (unlabeled).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// The counter series `name{labels}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(intern(
            &self.counters,
            SeriesKey::new(name, labels),
            Arc::default,
        ))
    }

    /// The gauge series `name` (unlabeled).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// The gauge series `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(intern(
            &self.gauges,
            SeriesKey::new(name, labels),
            Arc::default,
        ))
    }

    /// The histogram series `name` with `bounds` upper bucket bounds
    /// (exclusive of the implicit `+Inf`). Bounds are fixed at first use;
    /// later calls reuse the existing buckets.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        intern(&self.histograms, SeriesKey::new(name, &[]), || {
            Arc::new(Histogram::new(bounds))
        })
    }

    /// Prometheus-style text exposition of every series, deterministically
    /// ordered.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_name.as_deref() != Some(name) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = Some(name.to_string());
            }
        };
        for (key, v) in self.counters.read().expect("metrics lock").iter() {
            type_line(&mut out, &key.name, "counter");
            let _ = writeln!(out, "{} {}", key.render(), v.get());
        }
        for (key, v) in self.gauges.read().expect("metrics lock").iter() {
            type_line(&mut out, &key.name, "gauge");
            let _ = writeln!(out, "{} {}", key.render(), v.get());
        }
        for (key, h) in self.histograms.read().expect("metrics lock").iter() {
            type_line(&mut out, &key.name, "histogram");
            let bucket_name = format!("{}_bucket", key.name);
            // One snapshot per histogram so the rendered `_count` agrees
            // with the bucket lines even while observers race.
            let snap = h.snapshot();
            for (bound, cum) in &snap.cumulative {
                let le = if bound.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format!("{bound}")
                };
                let _ = writeln!(
                    out,
                    "{} {cum}",
                    render_series(&bucket_name, &key.labels, &[("le", le)])
                );
            }
            let _ = writeln!(
                out,
                "{} {}",
                render_series(&format!("{}_sum", key.name), &key.labels, &[]),
                snap.sum
            );
            let _ = writeln!(
                out,
                "{} {}",
                render_series(&format!("{}_count", key.name), &key.labels, &[]),
                snap.count
            );
        }
        out
    }

    /// JSON snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` with label-rendered series names as keys.
    pub fn snapshot_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let scalar_map = |map: &RwLock<BTreeMap<SeriesKey, Arc<AtomicF64>>>| {
            Value::Object(
                map.read()
                    .expect("metrics lock")
                    .iter()
                    .map(|(k, v)| (k.render(), Value::Float(v.get())))
                    .collect(),
            )
        };
        let histograms = Value::Object(
            self.histograms
                .read()
                .expect("metrics lock")
                .iter()
                .map(|(k, h)| {
                    // One snapshot so "count" equals the +Inf bucket.
                    let snap = h.snapshot();
                    let buckets = Value::Array(
                        snap.cumulative
                            .into_iter()
                            .map(|(bound, cum)| {
                                serde_json::json!({
                                    "le": if bound.is_infinite() {
                                        Value::String("+Inf".into())
                                    } else {
                                        Value::Float(bound)
                                    },
                                    "count": cum,
                                })
                            })
                            .collect(),
                    );
                    (
                        k.render(),
                        serde_json::json!({
                            "buckets": buckets,
                            "sum": snap.sum,
                            "count": snap.count,
                        }),
                    )
                })
                .collect(),
        );
        serde_json::json!({
            "counters": scalar_map(&self.counters),
            "gauges": scalar_map(&self.gauges),
            "histograms": histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let reg = Registry::new();
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // Half the threads reuse a cached handle, half look the
                    // series up per increment — both paths must be exact.
                    let c = reg.counter("hits_total");
                    for i in 0..per_thread {
                        if i % 2 == 0 {
                            c.inc();
                        } else {
                            reg.counter("hits_total").inc();
                        }
                    }
                });
            }
        });
        assert_eq!(
            reg.counter("hits_total").get(),
            (threads * per_thread) as f64
        );
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 5.0]);
        // Exactly-on-bound observations land in that bucket (`le`
        // semantics); past the last bound lands in +Inf.
        for v in [0.5, 1.0, 1.5, 2.0, 5.0, 5.1] {
            h.observe(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum.len(), 4);
        assert_eq!(cum[0], (1.0, 2)); // 0.5, 1.0
        assert_eq!(cum[1], (2.0, 4)); // + 1.5, 2.0
        assert_eq!(cum[2], (5.0, 5)); // + 5.0
        assert_eq!(cum[3].1, 6); // + 5.1 in +Inf
        assert!(cum[3].0.is_infinite());
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 15.1).abs() < 1e-9);
    }

    #[test]
    fn exposition_format_golden() {
        let reg = Registry::new();
        reg.counter("sa_moves_total").add(120.0);
        reg.counter_with("sa_moves_total", &[("chain", "0")])
            .add(60.0);
        reg.gauge("sa_acceptance_ratio").set(0.25);
        reg.histogram("solve_wall_seconds", &[0.1, 1.0])
            .observe(0.5);
        let text = reg.render_prometheus();
        let expected = "\
# TYPE sa_moves_total counter
sa_moves_total 120
sa_moves_total{chain=\"0\"} 60
# TYPE sa_acceptance_ratio gauge
sa_acceptance_ratio 0.25
# TYPE solve_wall_seconds histogram
solve_wall_seconds_bucket{le=\"0.1\"} 0
solve_wall_seconds_bucket{le=\"1\"} 1
solve_wall_seconds_bucket{le=\"+Inf\"} 1
solve_wall_seconds_sum 0.5
solve_wall_seconds_count 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("c_total", &[("q", "say \"hi\"")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("c_total{q=\"say \\\"hi\\\"\"} 1"));
    }

    #[test]
    fn snapshot_json_carries_all_kinds() {
        let reg = Registry::new();
        reg.counter("a_total").add(2.0);
        reg.gauge("g").set(1.5);
        reg.histogram("h", &[1.0]).observe(0.5);
        let snap = reg.snapshot_json();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("a_total"))
                .and_then(|v| v.as_f64()),
            Some(2.0)
        );
        assert_eq!(
            snap.get("gauges")
                .and_then(|g| g.get("g"))
                .and_then(|v| v.as_f64()),
            Some(1.5)
        );
        let h = snap.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("count").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn histogram_snapshots_stay_consistent_under_concurrent_observes() {
        // Regression for the torn count/bucket race the model checker
        // surfaced (count used to be a separate atomic incremented after
        // the bucket cell): every snapshot taken while writers are mid-
        // flight must satisfy count == Σ buckets. The exhaustive proof
        // lives in model_check; this hammers the same invariant in-tier.
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 5.0]);
        let writers = 4;
        let per_writer = 5_000;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        h.observe(((w + i) % 7) as f64);
                    }
                });
            }
            for _ in 0..2_000 {
                let snap = h.snapshot();
                let bucket_sum = snap.cumulative.last().map(|(_, c)| *c).unwrap_or(0);
                assert_eq!(snap.count, bucket_sum, "torn snapshot: {snap:?}");
                assert!(snap.cumulative.windows(2).all(|x| x[0].1 <= x[1].1));
                assert!(snap.count <= (writers * per_writer) as u64);
            }
        });
        assert_eq!(h.count(), (writers * per_writer) as u64);
    }

    #[test]
    fn histograms_keep_first_bounds() {
        let reg = Registry::new();
        let h1 = reg.histogram("h", &[1.0, 2.0]);
        let h2 = reg.histogram("h", &[9.0]);
        h2.observe(1.5);
        assert_eq!(h1.cumulative()[1], (2.0, 1));
    }
}
