//! CLI hardening: malformed user input must produce a one-line error
//! and exit code 1 — never a panic (exit 101) and never a backtrace.

use std::process::Command;

fn vpart(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vpart"))
        .args(args)
        .output()
        .expect("vpart binary runs")
}

/// Runs the CLI and asserts it failed *gracefully*: non-zero but not a
/// panic, with a diagnostic mentioning `needle` on stderr.
fn assert_clean_error(args: &[&str], needle: &str) {
    let out = vpart(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{args:?} should fail\n{stderr}");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{args:?} must exit 1, not crash: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{args:?} panicked:\n{stderr}");
    assert!(
        stderr.contains(needle),
        "{args:?} stderr should mention {needle:?}:\n{stderr}"
    );
}

#[test]
fn negative_time_limit_is_rejected_not_a_panic() {
    // Regression: this used to reach Duration::from_secs_f64(-1.0) and
    // panic with a float-conversion backtrace.
    assert_clean_error(
        &[
            "solve",
            "--instance",
            "rndBt4x15",
            "--sites",
            "2",
            "--time-limit",
            "-1",
        ],
        "--time-limit",
    );
    assert_clean_error(
        &[
            "solve",
            "--instance",
            "rndBt4x15",
            "--sites",
            "2",
            "--time-limit",
            "NaN",
        ],
        "--time-limit",
    );
}

#[test]
fn malformed_flag_values_error_cleanly() {
    assert_clean_error(
        &["solve", "--instance", "rndBt4x15", "--sites", "-3"],
        "--sites",
    );
    assert_clean_error(
        &["solve", "--instance", "rndBt4x15", "--sites", "two"],
        "--sites",
    );
    assert_clean_error(
        &["solve", "--instance", "rndBt4x15", "--sites", "0"],
        "at least one site",
    );
    assert_clean_error(
        &[
            "solve",
            "--instance",
            "rndBt4x15",
            "--sites",
            "2",
            "--algo",
            "bogus",
        ],
        "unknown algorithm",
    );
    assert_clean_error(
        &["solve", "--instance", "no-such-instance", "--sites", "2"],
        "unknown instance",
    );
    assert_clean_error(&["solve", "--instance"], "needs a value");
    assert_clean_error(&["frobnicate"], "unknown command");
}

#[test]
fn corrupt_instance_files_error_cleanly() {
    let path = std::env::temp_dir().join(format!("vpart_corrupt_{}.json", std::process::id()));
    std::fs::write(&path, "{\"schema\": [1, 2,").unwrap();
    assert_clean_error(
        &[
            "solve",
            "--instance",
            path.to_str().unwrap(),
            "--sites",
            "2",
        ],
        "not a valid instance file",
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn watch_validates_online_config_flags() {
    let dir = std::env::temp_dir();
    let schema = dir.join(format!("vpart_cli_{}.sql", std::process::id()));
    let log = dir.join(format!("vpart_cli_{}.log", std::process::id()));
    std::fs::write(&schema, "CREATE TABLE r (a INT, b INT);\n").unwrap();
    std::fs::write(&log, "SELECT a FROM r;\n").unwrap();
    let (schema, log) = (
        schema.to_str().unwrap().to_owned(),
        log.to_str().unwrap().to_owned(),
    );

    for (flag, value, needle) in [
        ("--decay", "1.5", "decay factor"),
        ("--rows", "0", "rows_per_fragment"),
        ("--drift-threshold", "-5", "drift threshold"),
        ("--interval", "0", "--interval"),
        ("--hysteresis", "0", "hysteresis"),
        ("--migration-batch-bytes", "0", "migration_batch_bytes"),
        ("--max-retries", "never", "--max-retries"),
        ("--fault", "watch.resolve:prob=2", "prob"),
        ("--fault", "nocolonhere", "point:trigger"),
    ] {
        assert_clean_error(
            &[
                "watch", "--schema", &schema, "--log", &log, "--sites", "2", flag, value,
            ],
            needle,
        );
    }

    let _ = std::fs::remove_file(schema);
    let _ = std::fs::remove_file(log);
}

#[test]
fn replay_rejects_malformed_skew_and_fault_specs() {
    for (flag, value, needle) in [
        ("--skew", "zipf:2", "zipf theta"),
        ("--skew", "zipf:abc", "zipf"),
        ("--skew", "hotspot:1.5", "hotspot fraction"),
        ("--skew", "pareto", "unknown skew"),
        ("--fault", "replay.pass:sometimes", "unknown trigger"),
        ("--fault", "replay.pass:nth=0", "1-based"),
        ("--fault", ":once", "empty fail-point"),
    ] {
        assert_clean_error(
            &[
                "replay",
                "--instance",
                "rndBt4x15",
                "--sites",
                "2",
                flag,
                value,
            ],
            needle,
        );
    }
}

#[test]
fn corrupt_and_missing_journals_error_cleanly() {
    assert_clean_error(
        &["inspect", "--journal", "/nonexistent/journal.jsonl"],
        "cannot read",
    );

    let dir = std::env::temp_dir();
    // Garbage is reported as corruption naming the line, not a panic.
    let garbage = dir.join(format!(
        "vpart_journal_garbage_{}.jsonl",
        std::process::id()
    ));
    std::fs::write(&garbage, "this is not a journal\n").unwrap();
    assert_clean_error(
        &["inspect", "--journal", garbage.to_str().unwrap()],
        "line 1",
    );
    let _ = std::fs::remove_file(&garbage);

    // A bit-flipped record in an otherwise valid journal trips the
    // per-line checksum.
    use vpart::prelude::{JournalRecord, MigrationJournal};
    let mut journal = MigrationJournal::new();
    journal
        .append(JournalRecord::Start {
            fingerprint: 0xFEED,
            batches: 2,
            rows_per_fragment: 8,
        })
        .unwrap();
    journal
        .append(JournalRecord::BatchBegin { batch: 0 })
        .unwrap();
    journal
        .append(JournalRecord::BatchCommit {
            batch: 0,
            bytes: 32.0,
        })
        .unwrap();
    let tampered = journal.to_jsonl().replacen("32", "33", 1);
    let path = dir.join(format!(
        "vpart_journal_tampered_{}.jsonl",
        std::process::id()
    ));
    std::fs::write(&path, tampered).unwrap();
    assert_clean_error(
        &["inspect", "--journal", path.to_str().unwrap()],
        "checksum mismatch",
    );
    let _ = std::fs::remove_file(&path);
}
