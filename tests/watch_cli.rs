//! End-to-end CLI: the online repartitioning loop through `vpart watch`.

use std::path::Path;
use std::process::Command;

fn data(file: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/data")
        .join(file)
        .to_string_lossy()
        .into_owned()
}

fn vpart(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vpart"))
        .args(args)
        .output()
        .expect("vpart binary runs")
}

#[test]
fn watch_detects_drift_and_migrates_with_exact_meter() {
    let phases = format!("{},{}", data("queries.log"), data("queries_drifted.log"));
    let out = vpart(&[
        "watch",
        "--schema",
        &data("schema.sql"),
        "--log",
        &phases,
        "--sites",
        "3",
        "--lambda",
        "0.5",
        "--interval",
        "2",
        "--decay",
        "0.5",
        "--drift-threshold",
        "0.05",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let epochs: Vec<serde_json::Value> =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    assert_eq!(epochs.len(), 4, "2 phases × 2 epochs");

    let field = |e: &serde_json::Value, path: &[&str]| -> Option<serde_json::Value> {
        let mut cur = e.clone();
        for key in path {
            cur = cur.get(key)?.clone();
        }
        Some(cur)
    };
    let phase = |e: &serde_json::Value| field(e, &["phase"]).unwrap().as_str().unwrap().to_owned();
    let triggered = |e: &serde_json::Value| field(e, &["triggered"]).unwrap().as_bool().unwrap();

    // Epoch 0 bootstraps cold.
    assert_eq!(
        field(&epochs[0], &["resolve", "cold"]).and_then(|v| v.as_bool()),
        Some(true)
    );

    // The steady phase never triggers; the drifted phase does at least
    // once, with a migration whose meter equals the estimate exactly.
    for e in &epochs[1..] {
        if phase(e).ends_with("queries.log") {
            assert!(!triggered(e), "steady epoch drifted");
        }
    }
    let drifted: Vec<&serde_json::Value> = epochs
        .iter()
        .filter(|e| phase(e).ends_with("queries_drifted.log") && triggered(e))
        .collect();
    assert!(!drifted.is_empty(), "the drifted phase must trigger");
    for e in &drifted {
        assert_eq!(
            field(e, &["resolve", "cold"]).and_then(|v| v.as_bool()),
            Some(false),
            "re-solves after bootstrap are warm"
        );
        let est = field(e, &["migration", "estimated_bytes"])
            .and_then(|v| v.as_f64())
            .expect("triggered epoch carries a migration");
        let meas = field(e, &["migration", "measured_bytes"])
            .and_then(|v| v.as_f64())
            .unwrap();
        assert_eq!(est, meas, "engine meter == plan estimate, exactly");
        assert_eq!(
            field(e, &["migration", "meter_matches"]).and_then(|v| v.as_bool()),
            Some(true)
        );
        // The drifted re-fit actually moves data in this scenario.
        assert!(meas > 0.0);
    }
}

#[test]
fn watch_records_trace_metrics_and_epoch_timings() {
    let trace = std::env::temp_dir().join(format!("vpart_{}_watch.jsonl", std::process::id()));
    let metrics = std::env::temp_dir().join(format!("vpart_{}_watch.prom", std::process::id()));
    let phases = format!("{},{}", data("queries.log"), data("queries_drifted.log"));
    let out = vpart(&[
        "watch",
        "--schema",
        &data("schema.sql"),
        "--log",
        &phases,
        "--sites",
        "3",
        "--lambda",
        "0.5",
        "--interval",
        "2",
        "--drift-threshold",
        "0.05",
        "--json",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stdout is the pure JSON epoch array; file notices are stderr-only.
    let epochs: Vec<serde_json::Value> =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    assert_eq!(epochs.len(), 4);
    for e in &epochs {
        assert!(e.get("epoch_wall_secs").unwrap().as_f64().unwrap() > 0.0);
        assert!(e.get("snapshot_attrs").unwrap().as_u64().unwrap() > 0);
    }

    // The trace round-trips: one watch_epoch span per epoch, and the
    // drifted phase's migration shows up in the summary byte meter.
    let summary =
        vpart::obs::TraceSummary::from_jsonl(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    assert_eq!(summary.epochs.len(), 4);
    assert!(summary.migration_bytes > 0.0);
    let inspected = vpart(&["inspect", trace.to_str().unwrap()]);
    assert!(inspected.status.success());
    let rendered = String::from_utf8_lossy(&inspected.stdout).into_owned();
    assert!(rendered.contains("epoch timeline"));
    assert!(rendered.contains("total migrated:"));

    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(prom.contains("watch_epochs_total 4"));
    assert!(prom.contains("watch_drift_triggers_total"));
    assert!(prom.contains("engine_migration_bytes_total"));
    assert!(prom.contains("epoch_wall_seconds_count 4"));

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn watch_exits_degraded_when_migrations_keep_failing() {
    // Every migration batch crashes and --max-retries 0 means the first
    // failure already degrades the watcher; drift never recedes, so the
    // run ends degraded: exit code 1 with a diagnostic naming the mode.
    let phases = format!("{},{}", data("queries.log"), data("queries_drifted.log"));
    let out = vpart(&[
        "watch",
        "--schema",
        &data("schema.sql"),
        "--log",
        &phases,
        "--sites",
        "3",
        "--lambda",
        "0.5",
        "--interval",
        "2",
        "--decay",
        "0.5",
        "--drift-threshold",
        "0.05",
        "--max-retries",
        "0",
        "--fault",
        "migration.batch:prob=1.0",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1), "degraded watch must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(stderr.contains("degraded"), "{stderr}");

    // The JSON epoch log is still emitted and records the failure path:
    // a rolled-back migration attempt, then degraded incumbent service.
    let epochs: Vec<serde_json::Value> =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    assert_eq!(epochs.len(), 4);
    assert!(epochs
        .iter()
        .any(|e| e.get("degraded").unwrap().as_bool() == Some(true)));
    assert!(epochs.iter().any(|e| {
        e.get("veto")
            .and_then(|v| v.as_str())
            .is_some_and(|v| v.contains("rolled back"))
    }));
    assert!(
        epochs
            .iter()
            .all(|e| matches!(e.get("migration"), Some(serde_json::Value::Null))),
        "no migration may complete under an always-firing fault"
    );
}

#[test]
fn watch_retries_after_a_one_shot_migration_fault() {
    // A single injected crash rolls back, backs off one epoch, then the
    // retried migration completes with an exact meter — exit code 0.
    let phases = format!("{},{}", data("queries.log"), data("queries_drifted.log"));
    let out = vpart(&[
        "watch",
        "--schema",
        &data("schema.sql"),
        "--log",
        &phases,
        "--sites",
        "3",
        "--lambda",
        "0.5",
        "--interval",
        "4",
        "--decay",
        "0.5",
        "--drift-threshold",
        "0.05",
        "--fault",
        "migration.batch:once",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let epochs: Vec<serde_json::Value> =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    let failed: Vec<_> = epochs
        .iter()
        .filter(|e| {
            e.get("veto")
                .and_then(|v| v.as_str())
                .is_some_and(|v| v.contains("rolled back"))
        })
        .collect();
    assert_eq!(failed.len(), 1, "exactly one attempt crashes");
    let migrated: Vec<_> = epochs
        .iter()
        .filter(|e| !matches!(e.get("migration"), Some(serde_json::Value::Null)))
        .collect();
    assert!(
        !migrated.is_empty(),
        "the retried migration must land: {epochs:?}"
    );
    for e in &migrated {
        let m = e.get("migration").unwrap();
        assert_eq!(m.get("meter_matches").unwrap().as_bool(), Some(true));
        assert!(m.get("batches").unwrap().as_u64().unwrap() >= 1);
    }
}

#[test]
fn watch_window_mode_and_flag_validation() {
    let phases = data("queries.log");
    // Sliding-window decay runs end to end.
    let out = vpart(&[
        "watch",
        "--schema",
        &data("schema.sql"),
        "--log",
        &phases,
        "--sites",
        "2",
        "--window",
        "2",
        "--interval",
        "1",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let epochs: Vec<serde_json::Value> =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    assert_eq!(epochs.len(), 1);

    // --decay and --window are mutually exclusive.
    let out = vpart(&[
        "watch",
        "--schema",
        &data("schema.sql"),
        "--log",
        &phases,
        "--decay",
        "0.5",
        "--window",
        "2",
    ]);
    assert!(!out.status.success());
    // A missing workload flag is reported.
    let out = vpart(&["watch", "--schema", &data("schema.sql")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--log or --stats"));
}
