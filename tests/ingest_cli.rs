//! End-to-end CLI: SQL ingestion through the `vpart` binary.

use std::path::Path;
use std::process::Command;

fn data(file: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/data")
        .join(file)
        .to_string_lossy()
        .into_owned()
}

fn vpart(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vpart"))
        .args(args)
        .output()
        .expect("vpart binary runs")
}

#[test]
fn solve_from_schema_and_log() {
    // The acceptance path: schema + log straight into solve.
    let out = vpart(&[
        "solve",
        "--schema",
        &data("schema.sql"),
        "--log",
        &data("queries.log"),
        "--sites",
        "2",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    assert_eq!(json.get("sites").and_then(|v| v.as_u64()), Some(2));
    assert!(json.get("cost").and_then(|v| v.as_f64()).unwrap() > 0.0);

    // The emitted partitioning validates against a fresh ingestion of the
    // same workload.
    let part: vpart::model::Partitioning =
        serde_json::from_value(json.get("partitioning").unwrap()).unwrap();
    let schema_sql = std::fs::read_to_string(data("schema.sql")).unwrap();
    let log = std::fs::read_to_string(data("queries.log")).unwrap();
    let ingested = vpart::ingest::ingest(
        &schema_sql,
        &log,
        &vpart::ingest::IngestOptions::default().with_name(data("schema.sql")),
    )
    .unwrap();
    part.validate(&ingested.instance, false)
        .expect("CLI partitioning validates");
}

#[test]
fn ingest_writes_a_loadable_instance_file() {
    let tmp = std::env::temp_dir().join("vpart_cli_ingest_test.json");
    let tmp_str = tmp.to_string_lossy().into_owned();
    let out = vpart(&[
        "ingest",
        "--schema",
        &data("schema.sql"),
        "--log",
        &data("queries.log"),
        "--name",
        "web-shop",
        "--out",
        &tmp_str,
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ingested 5 tables"),
        "report on stderr: {stderr}"
    );

    // The file round-trips through the model's serde format...
    let json = std::fs::read_to_string(&tmp).unwrap();
    let ins: vpart::model::Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(ins.name(), "web-shop");
    assert_eq!(ins.n_tables(), 5);

    // ...and `solve --instance <file>` accepts it.
    let out = vpart(&["solve", "--instance", &tmp_str, "--sites", "2"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("web-shop"), "solve output: {stdout}");
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn ingest_json_report_flattens_multi_table_statements() {
    // The web-shop log contains a JOIN, an `IN (SELECT ...)` and an
    // `INSERT ... SELECT`; all must ingest (zero skips) and the report
    // must surface the PK-driven row estimates.
    let out = vpart(&[
        "ingest",
        "--schema",
        &data("schema.sql"),
        "--log",
        &data("queries.log"),
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let report_line = stderr
        .lines()
        .find(|l| l.trim_start().starts_with('{'))
        .expect("JSON report on stderr");
    let report: serde_json::Value = serde_json::from_str(report_line).unwrap();
    assert_eq!(report.get("skipped").and_then(|v| v.as_u64()), Some(0));
    let seen = report.get("statements_seen").and_then(|v| v.as_u64());
    assert_eq!(
        report.get("statements_ingested").and_then(|v| v.as_u64()),
        seen,
        "every statement ingests: {report}"
    );
    assert!(
        report
            .get("row_estimates")
            .and_then(|v| v.as_u64())
            .unwrap()
            > 0,
        "PK-driven estimates are reported: {report}"
    );
}

#[test]
fn solve_from_stats_dump_agrees_with_log_ingestion() {
    // The acceptance path: schema + pg_stat_statements dump straight into
    // solve, producing the same partitioning as the query-log twin.
    let schema_path = data("schema.sql");
    let solve = |source: &[&str]| -> serde_json::Value {
        let mut args = vec!["solve", "--schema", schema_path.as_str()];
        args.extend_from_slice(source);
        args.extend_from_slice(&["--sites", "2", "--json"]);
        let out = vpart(&args);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap()
    };
    let stats_path = data("pg_stat_statements.csv");
    let log_path = data("queries.log");
    let from_stats = solve(&["--stats", &stats_path, "--stats-format", "pgss-csv"]);
    let from_log = solve(&["--log", &log_path]);
    assert_eq!(
        from_stats.get("partitioning"),
        from_log.get("partitioning"),
        "same workload, same seed, same layout"
    );
    assert_eq!(from_stats.get("cost"), from_log.get("cost"));
}

#[test]
fn ingest_stats_strict_json_reports_confidence() {
    // The checked-in dump ingests cleanly: --strict exits zero.
    let stats_path = data("pg_stat_statements.csv");
    let out = vpart(&[
        "ingest",
        "--schema",
        &data("schema.sql"),
        "--stats",
        &stats_path,
        "--stats-format",
        "pgss-csv",
        "--strict",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let report_line = stderr
        .lines()
        .find(|l| l.trim_start().starts_with('{'))
        .expect("JSON report on stderr");
    let report: serde_json::Value = serde_json::from_str(report_line).unwrap();
    assert_eq!(report.get("skipped").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(
        report.get("sample_rate").and_then(|v| v.as_f64()),
        Some(1.0)
    );
    assert_eq!(
        report.get("low_confidence").and_then(|v| v.as_u64()),
        Some(0)
    );

    // Sampling the same dump at 1% makes the rare templates
    // low-confidence; --strict must then exit non-zero and the JSON
    // report must carry the per-template entries.
    let out = vpart(&[
        "ingest",
        "--schema",
        &data("schema.sql"),
        "--stats",
        &stats_path,
        "--sample-rate",
        "0.01",
        "--strict",
        "--json",
    ]);
    assert!(!out.status.success(), "--strict must fail on LowConfidence");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let report_line = stderr
        .lines()
        .find(|l| l.trim_start().starts_with('{'))
        .expect("JSON report still printed");
    let report: serde_json::Value = serde_json::from_str(report_line).unwrap();
    let entries = report.get("confidence").and_then(|v| v.as_array()).unwrap();
    assert!(!entries.is_empty(), "per-template entries: {report}");
    let low = entries
        .iter()
        .filter(|e| e.get("low").and_then(|v| v.as_bool()) == Some(true))
        .count();
    assert!(low > 0);
    assert_eq!(
        report.get("low_confidence").and_then(|v| v.as_u64()),
        Some(low as u64)
    );
    // update_profile was seen once: scaling 1 observation by 100 is flagged.
    assert!(entries.iter().any(|e| {
        e.get("txn").and_then(|v| v.as_str()) == Some("update_profile")
            && e.get("observed").and_then(|v| v.as_f64()) == Some(1.0)
            && e.get("scaled").and_then(|v| v.as_f64()) == Some(100.0)
    }));
    assert!(
        stderr.contains("--strict"),
        "failure names the flag: {stderr}"
    );
}

#[test]
fn list_supports_json() {
    let out = vpart(&["list", "--json"]);
    assert!(out.status.success());
    let json: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    let entries = json.as_array().unwrap();
    assert!(entries.iter().any(|e| {
        e.get("name").and_then(|n| n.as_str()) == Some("tpcc")
            && e.get("attrs").and_then(|a| a.as_u64()) == Some(92)
    }));
}

#[test]
fn ingest_errors_are_reported_not_panicked() {
    let out = vpart(&[
        "ingest",
        "--schema",
        "/nonexistent.sql",
        "--log",
        "/nope.log",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    let out = vpart(&["solve", "--instance", "not-a-thing", "--sites", "2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown instance"));
}
