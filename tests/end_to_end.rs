//! Cross-crate integration: instance → solver → partitioning → engine.

use vpart::core::{evaluate, CostConfig};
use vpart::prelude::*;

#[test]
fn full_pipeline_on_tpcc() {
    let instance = vpart::instances::tpcc();
    let cost = CostConfig::default();

    // Heuristic solve.
    let sa = SaSolver::new(SaConfig::fast_deterministic(21))
        .solve(&instance, 2, &cost)
        .unwrap();
    sa.partitioning.validate(&instance, false).unwrap();

    // SA solution warm-starts the exact solver; the QP may only improve it
    // in the blended objective (6).
    let qp = QpSolver::new(QpConfig {
        warm_start: Some(sa.partitioning.clone()),
        ..QpConfig::with_time_limit(120.0)
    })
    .solve(&instance, 2, &cost)
    .unwrap();
    assert!(qp.breakdown.objective6 <= sa.breakdown.objective6 + 1e-9);

    // Deploy the QP layout and execute: measured == predicted.
    let mut dep = Deployment::new(&instance, &qp.partitioning, 32).unwrap();
    let measured = dep.execute(&Trace::uniform(&instance, 2)).unwrap();
    let predicted = evaluate(&instance, &qp.partitioning, &cost);
    assert!(
        (measured.measured_objective4(cost.p) - 2.0 * predicted.objective4).abs()
            < 1e-6 * predicted.objective4,
    );
}

#[test]
fn facade_algorithm_dispatch_and_serde() {
    let instance = vpart::instances::by_name("rndBt4x15").unwrap();
    let cost = CostConfig::default();
    let report = vpart::solve(&instance, 2, &vpart::Algorithm::sa(3), &cost).unwrap();

    // Instance and partitioning round-trip through JSON.
    let json = serde_json::to_string(&instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(instance, back);
    let pjson = serde_json::to_string(&report.partitioning).unwrap();
    let pback: Partitioning = serde_json::from_str(&pjson).unwrap();
    assert_eq!(report.partitioning, pback);
    // The deserialized pair still validates together.
    pback.validate(&back, false).unwrap();
}

#[test]
fn canonicalization_preserves_cost() {
    let instance = vpart::instances::tpcc();
    let cost = CostConfig::default();
    let sa = SaSolver::new(SaConfig::fast_deterministic(4))
        .solve(&instance, 3, &cost)
        .unwrap();
    let canon = sa.partitioning.canonicalized();
    canon.validate(&instance, false).unwrap();
    let a = evaluate(&instance, &sa.partitioning, &cost);
    let b = evaluate(&instance, &canon, &cost);
    assert!((a.objective4 - b.objective4).abs() < 1e-9);
    assert!((a.objective6 - b.objective6).abs() < 1e-9);
    // Canonical form: the first transaction sits on site 0.
    assert_eq!(canon.site_of(TxnId(0)), SiteId(0));
}

#[test]
fn more_sites_never_raise_the_optimum() {
    // With replication allowed, a k-site solution embeds into k+1 sites,
    // so the QP optimum is non-increasing in |S|.
    let instance = vpart::instances::by_name("rndBt4x15").unwrap();
    let cost = CostConfig::default().with_lambda(1.0);
    let mut prev = f64::INFINITY;
    for sites in 1..=3 {
        let mut qc = QpConfig::with_time_limit(120.0);
        qc.mip_gap = 0.0;
        let r = QpSolver::new(qc).solve(&instance, sites, &cost).unwrap();
        assert!(r.is_optimal(), "|S|={sites} must solve");
        assert!(
            r.breakdown.objective4 <= prev + 1e-9,
            "|S|={sites}: {} > previous {prev}",
            r.breakdown.objective4
        );
        prev = r.breakdown.objective4;
    }
}

#[test]
fn latency_extension_only_adds_cost_for_remote_writes() {
    let instance = vpart::instances::tpcc();
    let base = CostConfig::default();
    let with_latency = CostConfig::default().with_latency(50.0);
    let sa = SaSolver::new(SaConfig::fast_deterministic(8))
        .solve(&instance, 2, &base)
        .unwrap();
    let b0 = evaluate(&instance, &sa.partitioning, &base);
    let b1 = evaluate(&instance, &sa.partitioning, &with_latency);
    assert_eq!(
        b0.objective4, b1.objective4,
        "latency never changes objective (4)"
    );
    assert!(b1.latency >= 0.0);
    assert!(b1.objective6 >= b0.objective6);
    // Single-site layouts have zero latency term.
    let single = Partitioning::single_site(&instance, 1).unwrap();
    assert_eq!(evaluate(&instance, &single, &with_latency).latency, 0.0);
}

#[test]
fn multi_start_facade_beats_or_matches_single_start_on_tpcc() {
    let instance = vpart::instances::tpcc();
    let cost = CostConfig::default();
    // Equal per-chain budget: multi-start chain 0 replays the single-start
    // chain (seeds derive as seed + restart index), so best-of-4 can only
    // match or beat it.
    let single = vpart::solve(&instance, 3, &vpart::Algorithm::sa(9), &cost).unwrap();
    let multi = vpart::solve(
        &instance,
        3,
        &vpart::Algorithm::sa_multi_start(9, 4, 4),
        &cost,
    )
    .unwrap();
    multi.partitioning.validate(&instance, false).unwrap();
    assert_eq!(multi.restarts.len(), 4);
    assert_eq!(multi.restarts.iter().filter(|s| s.winner).count(), 1);
    // Exact-replay guarantees (chain 0 == single-start; thread-count
    // independence) hold only when every chain froze naturally — TPC-C
    // freezes in milliseconds against the 600 s default budget, so a
    // timeout here means a pathologically loaded machine, not a bug.
    let serial = vpart::solve(
        &instance,
        3,
        &vpart::Algorithm::sa_multi_start(9, 4, 1),
        &cost,
    )
    .unwrap();
    let all_froze = [&single, &multi, &serial]
        .iter()
        .all(|r| r.restarts.iter().all(|s| !s.timed_out));
    if all_froze {
        assert!(multi.breakdown.objective6 <= single.breakdown.objective6 + 1e-9);
        assert_eq!(serial.partitioning, multi.partitioning);
        assert_eq!(serial.breakdown.objective6, multi.breakdown.objective6);
    }
}
