//! Property-based cross-solver agreement on random small instances.
//!
//! With `λ = 1` (pure cost) the exhaustive solver is provably optimal, so:
//!
//! * the QP solver (gap 0) must return the same objective-(4) cost,
//! * the SA solver must never beat it and should usually match it,
//! * evaluation identities must hold for every produced layout.

use proptest::prelude::*;
use vpart::core::{evaluate, CostConfig};
use vpart::prelude::*;
use vpart_instances::RandomParams;

fn small_params() -> impl Strategy<Value = (RandomParams, u64)> {
    (2usize..6, 1usize..4, 0u32..60, 2usize..8, any::<u64>()).prop_map(
        |(n_txns, n_tables, update_pct, max_attrs, seed)| {
            (
                RandomParams {
                    name: format!("prop-{n_txns}-{n_tables}-{seed}"),
                    n_txns,
                    n_tables,
                    max_queries_per_txn: 2,
                    update_pct,
                    max_attrs_per_table: max_attrs,
                    max_table_refs: 2,
                    max_attr_refs: 4,
                    widths: vec![2.0, 8.0],
                },
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn qp_matches_exhaustive_at_lambda_one((params, seed) in small_params()) {
        let instance = params.generate(seed);
        let cost = CostConfig::default().with_lambda(1.0);
        let exact = ExactSolver::default().solve(&instance, 2, &cost).unwrap();
        let mut qc = QpConfig::with_time_limit(120.0);
        qc.mip_gap = 0.0;
        let qp = QpSolver::new(qc).solve(&instance, 2, &cost).unwrap();
        prop_assert!(qp.is_optimal());
        prop_assert!(
            (exact.breakdown.objective4 - qp.breakdown.objective4).abs()
                <= 1e-6 * (1.0 + exact.breakdown.objective4),
            "exhaustive {} vs qp {}",
            exact.breakdown.objective4,
            qp.breakdown.objective4
        );
    }

    #[test]
    fn sa_never_beats_the_optimum((params, seed) in small_params()) {
        let instance = params.generate(seed);
        let cost = CostConfig::default().with_lambda(1.0);
        let exact = ExactSolver::default().solve(&instance, 2, &cost).unwrap();
        let sa = SaSolver::new(SaConfig::fast_deterministic(seed))
            .solve(&instance, 2, &cost)
            .unwrap();
        sa.partitioning.validate(&instance, false).unwrap();
        prop_assert!(
            sa.breakdown.objective4 >= exact.breakdown.objective4 - 1e-6,
            "sa {} below proven optimum {}",
            sa.breakdown.objective4,
            exact.breakdown.objective4
        );
    }

    #[test]
    fn evaluation_identities_hold((params, seed) in small_params()) {
        let instance = params.generate(seed);
        let cost = CostConfig::default();
        let sa = SaSolver::new(SaConfig::fast_deterministic(seed ^ 1))
            .solve(&instance, 3, &cost)
            .unwrap();
        let b = evaluate(&instance, &sa.partitioning, &cost);
        // Objective (4) is exactly A_R + A_W + p·B.
        prop_assert!(
            (b.objective4 - (b.read + b.write + cost.p * b.transfer)).abs()
                <= 1e-9 * (1.0 + b.objective4)
        );
        // m is the max of per-site work.
        let max = b.site_work.iter().fold(0.0f64, |m, &w| m.max(w));
        prop_assert_eq!(max, b.max_work);
        // Objective (6) blends (4) and m by λ.
        prop_assert!(
            (b.objective6 - (cost.lambda * b.objective4 + (1.0 - cost.lambda) * b.max_work))
                .abs()
                <= 1e-9 * (1.0 + b.objective6)
        );
        // Single-site baselines never transfer.
        let single = Partitioning::single_site(&instance, 1).unwrap();
        prop_assert_eq!(evaluate(&instance, &single, &cost).transfer, 0.0);
    }

    #[test]
    fn engine_agrees_on_random_instances((params, seed) in small_params()) {
        let instance = params.generate(seed);
        let cost = CostConfig::default();
        let sa = SaSolver::new(SaConfig::fast_deterministic(seed ^ 2))
            .solve(&instance, 2, &cost)
            .unwrap();
        let predicted = evaluate(&instance, &sa.partitioning, &cost);
        let mut dep = Deployment::new(&instance, &sa.partitioning, 8).unwrap();
        let measured = dep
            .execute(&vpart::engine::Trace::uniform(&instance, 1))
            .unwrap();
        let t = measured.totals();
        prop_assert!((t.bytes_read - predicted.read).abs() <= 1e-6 * (1.0 + predicted.read));
        prop_assert!(
            (t.bytes_written - predicted.write).abs() <= 1e-6 * (1.0 + predicted.write)
        );
        prop_assert!(
            (measured.transfer_bytes - predicted.transfer).abs()
                <= 1e-6 * (1.0 + predicted.transfer)
        );
    }
}
