//! End-to-end CLI: the production-rate trace replay harness through
//! `vpart replay` — throughput + model-error reporting, thread-count
//! independence of the byte meters, partitioning-file loading and flag
//! validation.

use std::path::Path;
use std::process::Command;

fn data(file: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/data")
        .join(file)
        .to_string_lossy()
        .into_owned()
}

fn vpart(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vpart"))
        .args(args)
        .output()
        .expect("vpart binary runs")
}

fn json_stdout(out: &std::process::Output) -> serde_json::Value {
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim())
        .expect("stdout is one JSON object")
}

#[test]
fn replay_reports_throughput_and_bounded_model_error_on_tpcc() {
    let out = vpart(&[
        "replay",
        "--instance",
        "tpcc",
        "--sites",
        "3",
        "--threads",
        "2",
        "--txns",
        "200",
        "--rows",
        "64",
        "--error-bound",
        "0.15",
        "--json",
    ]);
    let v = json_stdout(&out);
    assert!(v.get("txns_per_sec").unwrap().as_f64().unwrap() > 0.0);
    let err = v.get("model_error_ratio").unwrap().as_f64().unwrap();
    assert!(
        err.is_finite() && err.abs() <= 0.15,
        "model error {err} out of bounds"
    );
    // Duration 0 (the default) is exactly one deterministic pass.
    assert_eq!(v.get("passes").unwrap().as_u64(), Some(1));
    assert_eq!(v.get("txns_replayed").unwrap().as_u64(), Some(200));
    // The replayed stream feeds the online tracker.
    assert!(v.get("tracker_weight").unwrap().as_f64().unwrap() > 0.0);
    assert!(v.get("tracker_templates").unwrap().as_u64().unwrap() > 0);
}

#[test]
fn replay_meters_are_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = vpart(&[
            "replay",
            "--schema",
            &data("schema.sql"),
            "--log",
            &data("queries.log"),
            "--sites",
            "2",
            "--threads",
            threads,
            "--txns",
            "300",
            "--rows",
            "96",
            "--json",
        ]);
        json_stdout(&out)
    };
    let (one, four) = (run("1"), run("4"));
    assert_eq!(
        one.get("meter"),
        four.get("meter"),
        "byte meters must be bit-identical across --threads"
    );
    assert_ne!(one.get("threads"), four.get("threads"));
}

#[test]
fn replay_loads_a_solve_output_partitioning() {
    let solve = vpart(&["solve", "--instance", "tpcc", "--sites", "3", "--json"]);
    let solved = json_stdout(&solve);
    assert!(solved.get("partitioning").is_some());
    let path = std::env::temp_dir().join(format!("vpart_{}_solve.json", std::process::id()));
    std::fs::write(&path, solve.stdout).expect("solve output writes");

    let out = vpart(&[
        "replay",
        "--instance",
        "tpcc",
        "--sites",
        "3",
        "--partitioning",
        path.to_str().unwrap(),
        "--txns",
        "100",
        "--rows",
        "64",
        "--json",
    ]);
    let v = json_stdout(&out);
    assert_eq!(v.get("sites").unwrap().as_u64(), Some(3));
    assert!(v.get("txns_per_sec").unwrap().as_f64().unwrap() > 0.0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn replay_fault_injection_leaves_meters_bit_identical() {
    let run = |fault: Option<&str>| {
        let mut args = vec![
            "replay",
            "--instance",
            "tpcc",
            "--sites",
            "3",
            "--txns",
            "150",
            "--rows",
            "64",
            "--json",
        ];
        if let Some(spec) = fault {
            args.extend(["--fault", spec]);
        }
        json_stdout(&vpart(&args))
    };
    let clean = run(None);
    let injected = run(Some("replay.pass:nth=1"));
    assert_eq!(clean.get("passes_injected").unwrap().as_u64(), Some(0));
    assert_eq!(injected.get("passes_injected").unwrap().as_u64(), Some(1));
    assert_eq!(
        clean.get("meter"),
        injected.get("meter"),
        "a crashed-and-retried pass must not perturb the byte meters"
    );
}

#[test]
fn replay_skew_steers_rows_but_not_byte_totals() {
    let run = |skew: Option<&str>| {
        let mut args = vec![
            "replay",
            "--instance",
            "tpcc",
            "--sites",
            "3",
            "--txns",
            "150",
            "--rows",
            "64",
            "--json",
        ];
        if let Some(spec) = skew {
            args.extend(["--skew", spec]);
        }
        json_stdout(&vpart(&args))
    };
    let uniform = run(None);
    let zipf = run(Some("zipf:0.99"));
    // Reads touch whole-row widths, so totals are skew-independent …
    assert_eq!(uniform.get("measured"), zipf.get("measured"));
    // … but which rows were touched is not.
    assert_ne!(
        uniform.get("meter").unwrap().get("checksum"),
        zipf.get("meter").unwrap().get("checksum"),
        "zipf skew must steer the row touches"
    );
    // An explicit uniform spec is the default, bit for bit.
    let explicit = run(Some("uniform"));
    assert_eq!(uniform.get("meter"), explicit.get("meter"));
}

#[test]
fn replay_flag_validation() {
    // A negative duration is rejected.
    let out = vpart(&["replay", "--instance", "tpcc", "--duration", "-1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--duration"));
    // A malformed error bound is rejected.
    let out = vpart(&["replay", "--instance", "tpcc", "--error-bound", "abc"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--error-bound"));
    // A workload source is required.
    let out = vpart(&["replay", "--sites", "2"]);
    assert!(!out.status.success());
}
