//! End-to-end CLI: `vpart monitor` over the checked-in recorded trace
//! under `tests/data/` (a web-shop watch run with a `migration.batch`
//! fault armed: the built-in `watch-degraded` alert fires at tick 2 and
//! resolves at tick 5), plus the live `--health-out`/`--alerts-exit`
//! path on `vpart watch`.

use std::path::Path;
use std::process::Command;
use vpart::obs::TraceSummary;

fn fixture(file: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(file)
        .to_string_lossy()
        .into_owned()
}

fn vpart(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vpart"))
        .args(args)
        .output()
        .expect("vpart binary runs")
}

/// A per-test scratch path that does not collide across parallel tests.
fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vpart_{}_{name}", std::process::id()))
}

#[test]
fn monitor_renders_the_recorded_alert_timeline() {
    let out = vpart(&["monitor", &fixture("health_watch_trace.jsonl")]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("alert timeline"), "{text}");
    assert!(text.contains("watch-degraded"), "{text}");
    assert!(text.contains("firing"), "{text}");
    assert!(text.contains("resolved"), "{text}");
    assert!(text.contains("all alerts resolved"), "{text}");
    // The epoch table carries the degraded column from the span fields.
    assert!(text.contains("3 degraded"), "{text}");
    // Rules re-evaluated over the trace-rebuilt ring reproduce the edges.
    assert!(text.contains("rule re-evaluation"), "{text}");
}

#[test]
fn monitor_json_timeline_is_bit_identical_to_the_recorded_events() {
    let trace_path = fixture("health_watch_trace.jsonl");
    let out = vpart(&["monitor", &trace_path, "--json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim())
            .expect("stdout is one JSON document");

    // `.alerts` is exactly the transition list a live health snapshot
    // records: same JSON shape, key order and value formatting.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let summary = TraceSummary::from_jsonl(&text).expect("fixture trace parses");
    assert_eq!(summary.alerts.len(), 2, "fire + resolve");
    let expected: Vec<String> = summary
        .alerts
        .iter()
        .map(|a| serde_json::to_string(&a.to_transition_json()).unwrap())
        .collect();
    let got: Vec<String> = report
        .get("alerts")
        .and_then(|a| a.as_array())
        .expect("alerts array")
        .iter()
        .map(|v| serde_json::to_string(v).unwrap())
        .collect();
    assert_eq!(got, expected);
    assert!(got[0].contains("\"rule\":\"watch-degraded\""), "{got:?}");
    assert!(got[0].contains("\"state\":\"firing\""), "{got:?}");
    assert!(got[1].contains("\"state\":\"resolved\""), "{got:?}");

    // Nothing is firing at end of trace, and the degraded epochs show in
    // the epoch list.
    assert_eq!(
        report
            .get("firing")
            .and_then(|f| f.as_array())
            .unwrap()
            .len(),
        0
    );
    let epochs = report.get("epochs").and_then(|e| e.as_array()).unwrap();
    let degraded = epochs
        .iter()
        .filter(|e| e.get("degraded").and_then(|d| d.as_bool()) == Some(true))
        .count();
    assert_eq!(degraded, 3, "epochs 2..=4 ran degraded");

    // Re-running the monitor reproduces the report byte-for-byte.
    let again = vpart(&["monitor", &trace_path, "--json"]);
    assert_eq!(out.stdout, again.stdout, "monitor output must be stable");
}

#[test]
fn monitor_merges_the_health_snapshot_and_matches_its_transitions() {
    let out = vpart(&[
        "monitor",
        &fixture("health_watch_trace.jsonl"),
        "--metrics",
        &fixture("health_watch_snapshot.json"),
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();

    // The trace-derived timeline and the snapshot's transition history
    // agree element-for-element (the CI chaos job diffs these with jq).
    let alerts = report.get("alerts").and_then(|a| a.as_array()).unwrap();
    let snap_transitions = report
        .get("health")
        .and_then(|h| h.get("transitions"))
        .and_then(|t| t.as_array())
        .expect("health.transitions");
    assert_eq!(alerts.len(), snap_transitions.len());
    for (a, t) in alerts.iter().zip(snap_transitions) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(t).unwrap()
        );
    }

    // The snapshot's ring flags the same degraded ticks.
    let ticks = report
        .get("health")
        .and_then(|h| h.get("degraded_ticks"))
        .and_then(|t| t.as_array())
        .unwrap();
    let ticks: Vec<u64> = ticks.iter().filter_map(|v| v.as_u64()).collect();
    assert_eq!(ticks, vec![2, 3, 4]);
}

#[test]
fn monitor_follow_streams_alert_edges_from_a_static_file() {
    let out = vpart(&[
        "monitor",
        &fixture("health_watch_trace.jsonl"),
        "--follow",
        "--max-polls",
        "2",
        "--poll-ms",
        "1",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // One JSON transition per line, each edge exactly once (the second
    // poll sees no new bytes).
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .collect();
    assert_eq!(lines.len(), 2, "{lines:?}");
    let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(
        first.get("state").and_then(|s| s.as_str()),
        Some("firing"),
        "{lines:?}"
    );
    let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
    assert_eq!(
        second.get("state").and_then(|s| s.as_str()),
        Some("resolved")
    );
}

#[test]
fn inspect_health_summarizes_degraded_epochs() {
    let out = vpart(&[
        "inspect",
        "--health",
        &fixture("health_watch_snapshot.json"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("degraded ticks   3 of 6: 2, 3, 4"), "{text}");
    assert!(text.contains("alert history"), "{text}");
    assert!(text.contains("firing           none"), "{text}");

    // Merged with the trace: both the epoch table and the health
    // snapshot render in one report.
    let out = vpart(&[
        "inspect",
        &fixture("health_watch_trace.jsonl"),
        "--health",
        &fixture("health_watch_snapshot.json"),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("epoch timeline"), "{text}");
    assert!(text.contains("health snapshot"), "{text}");
}

#[test]
fn monitor_rejects_bad_usage() {
    let out = vpart(&["monitor"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: vpart monitor"));

    let out = vpart(&["monitor", "--json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: vpart monitor"));

    let out = vpart(&["monitor", "/nonexistent/trace.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn watch_rules_file_drives_a_custom_alert() {
    // A declarative rule on the always-present epoch counter: fires from
    // the second epoch on and never resolves, so --alerts-exit trips.
    let rules = scratch("rules.json");
    std::fs::write(
        &rules,
        r#"[{"name": "epochs-moving", "metric": "watch_epochs_total",
             "kind": "rate_above", "bound": 0.0, "severity": "critical"}]"#,
    )
    .unwrap();
    let schema = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data/schema.sql");
    let log = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data/queries.log");
    let health = scratch("custom_rule_health.json");
    let out = vpart(&[
        "watch",
        "--schema",
        schema.to_str().unwrap(),
        "--log",
        log.to_str().unwrap(),
        "--sites",
        "2",
        "--interval",
        "2",
        "--rules",
        rules.to_str().unwrap(),
        "--health-out",
        health.to_str().unwrap(),
        "--alerts-exit",
    ]);
    assert!(!out.status.success(), "custom critical rule must gate exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--alerts-exit"), "{stderr}");
    assert!(stderr.contains("epochs-moving"), "{stderr}");

    // The snapshot records the custom rule's firing state.
    let snap: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&health).unwrap()).unwrap();
    let firing = snap
        .get("alerts")
        .and_then(|a| a.get("firing"))
        .and_then(|f| f.as_array())
        .unwrap();
    assert_eq!(firing.len(), 1);
    assert_eq!(
        firing[0].get("rule").and_then(|r| r.as_str()),
        Some("epochs-moving")
    );
    let _ = std::fs::remove_file(&rules);
    let _ = std::fs::remove_file(&health);
}
