//! End-to-end CLI: `--trace-out` / `--metrics-out` on `vpart solve` and
//! the `vpart inspect` trace renderer.

use std::path::PathBuf;
use std::process::Command;
use vpart::obs::TraceSummary;

fn vpart(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vpart"))
        .args(args)
        .output()
        .expect("vpart binary runs")
}

/// A per-test scratch path that does not collide across parallel tests.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vpart_{}_{name}", std::process::id()))
}

#[test]
fn solve_records_trace_and_metrics_and_inspect_renders_them() {
    let trace = scratch("solve.jsonl");
    let metrics = scratch("solve.prom");
    let out = vpart(&[
        "solve",
        "--instance",
        "rndBt4x15",
        "--sites",
        "2",
        "--restarts",
        "4",
        "--threads",
        "2",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --json stdout stays machine-parseable: the file-written notices go
    // to stderr only.
    let report: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap().trim())
            .expect("stdout is one JSON document");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wrote trace"));
    assert!(stderr.contains("wrote metrics"));

    // The restart stats explain every chain: accepted + rejected == moves.
    let restarts = report.get("restarts").unwrap().as_array().unwrap();
    let chain = &restarts[0];
    let accepted = chain.get("accepted_moves").unwrap().as_u64().unwrap();
    let rejected = chain.get("rejected_moves").unwrap().as_u64().unwrap();
    let iterations = chain.get("iterations").unwrap().as_u64().unwrap();
    assert_eq!(accepted + rejected, iterations);
    assert!(chain.get("resyncs").unwrap().as_u64().unwrap() >= 1);
    assert!(chain.get("mean_abs_delta").unwrap().as_f64().unwrap() >= 0.0);

    // The trace is line-parseable JSONL with one sa_solve and one
    // sa_chain span per restart.
    let text = std::fs::read_to_string(&trace).unwrap();
    let summary = TraceSummary::from_jsonl(&text).expect("trace parses");
    assert_eq!(summary.chains.len(), 4, "one chain row per restart");
    assert_eq!(summary.chains.iter().filter(|c| c.winner).count(), 1);
    for c in &summary.chains {
        assert_eq!(c.accepted + c.rejected, c.iterations);
    }

    // The exposition carries the headline series.
    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(prom.contains("# TYPE sa_moves_total counter"));
    assert!(prom.contains("sa_acceptance_ratio "));
    assert!(prom.contains("solve_wall_seconds_bucket{le="));
    assert!(prom.contains("solve_wall_seconds_count 1"));

    // `vpart inspect` renders the per-chain convergence table.
    let out = vpart(&["inspect", trace.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rendered = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(rendered.contains("per-chain convergence"));
    assert!(rendered.contains("winner"));
    for c in &summary.chains {
        assert!(rendered.contains(&c.seed.to_string()), "seed column");
    }

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn qp_solves_record_node_and_pivot_counters() {
    let metrics = scratch("qp.prom");
    let out = vpart(&[
        "solve",
        "--instance",
        "rndBt4x15",
        "--sites",
        "2",
        "--algo",
        "qp",
        "--time-limit",
        "60",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(prom.contains("qp_branch_nodes_total"));
    assert!(prom.contains("qp_lp_pivots_total"));
    assert!(prom.contains("solve_wall_seconds_count 1"));
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn inspect_journal_summarizes_migration_state() {
    use vpart::prelude::{JournalRecord, MigrationJournal};

    // An in-flight journal: 1 of 3 batches committed, the second begun.
    let mut journal = MigrationJournal::new();
    journal
        .append(JournalRecord::Start {
            fingerprint: 0xFEED_BEEF,
            batches: 3,
            rows_per_fragment: 8,
        })
        .unwrap();
    journal
        .append(JournalRecord::BatchBegin { batch: 0 })
        .unwrap();
    journal
        .append(JournalRecord::BatchCommit {
            batch: 0,
            bytes: 64.0,
        })
        .unwrap();
    journal
        .append(JournalRecord::BatchBegin { batch: 1 })
        .unwrap();
    let path = scratch("inflight_journal.jsonl");
    std::fs::write(&path, journal.to_jsonl()).unwrap();

    let out = vpart(&["inspect", "--journal", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rendered = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(rendered.contains("0x00000000feedbeef"), "{rendered}");
    assert!(rendered.contains("boundary         1"), "{rendered}");
    assert!(rendered.contains("bytes committed  64.0"), "{rendered}");
    assert!(rendered.contains("in flight (1 of 3"), "{rendered}");

    // Rolling the journal back flips the reported status.
    journal.append(JournalRecord::RollbackBegin).unwrap();
    journal
        .append(JournalRecord::UndoBegin { batch: 0 })
        .unwrap();
    journal
        .append(JournalRecord::UndoCommit {
            batch: 0,
            bytes: 16.0,
        })
        .unwrap();
    journal.append(JournalRecord::RolledBack).unwrap();
    std::fs::write(&path, journal.to_jsonl()).unwrap();
    let out = vpart(&["inspect", "--journal", path.to_str().unwrap()]);
    assert!(out.status.success());
    let rendered = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(rendered.contains("rolled back"), "{rendered}");
    assert!(rendered.contains("bytes undone     16.0"), "{rendered}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn inspect_rejects_bad_usage_and_malformed_traces() {
    // No positional path.
    let out = vpart(&["inspect"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: vpart inspect"));

    // Missing file.
    let out = vpart(&["inspect", "/nonexistent/trace.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Malformed line: the error names the position.
    let bad = scratch("bad.jsonl");
    std::fs::write(&bad, "{\"type\":\"span\"}\nnot json\n").unwrap();
    let out = vpart(&["inspect", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    let _ = std::fs::remove_file(&bad);
}
