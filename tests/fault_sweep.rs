//! Crash-safety sweep: inject a fault at *every* batch boundary of a real
//! migration and assert that recovery — resume or rollback — reaches a
//! fragment state and byte meter bit-identical to the uninterrupted run.
//!
//! Two workloads: TPC-C (the paper's benchmark) and the web-shop schema +
//! query log shipped under `examples/data`. The journal is round-tripped
//! through its JSONL form at each crash, so on-disk persistence is in the
//! loop, not just the in-memory journal.

use vpart::core::sa::{SaConfig, SaSolver};
use vpart::core::CostConfig;
use vpart::ingest::IngestOptions;
use vpart::model::{BatchedMigrationPlan, Instance, MigrationPlan, Partitioning};
use vpart::prelude::{Deployment, FaultInjector, MigrationJournal};

const ROWS_PER_FRAGMENT: usize = 8;

fn webshop() -> Instance {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data");
    let schema = std::fs::read_to_string(dir.join("schema.sql")).expect("schema readable");
    let log = std::fs::read_to_string(dir.join("queries.log")).expect("log readable");
    vpart::ingest::ingest(&schema, &log, &IngestOptions::default())
        .expect("web-shop ingests")
        .instance
}

/// A centralize→distribute migration: guaranteed to install replicas on
/// fresh sites, i.e. to ship a non-trivial number of bytes in ≥ 2 batches.
fn batched_plan(ins: &Instance, sites: usize) -> BatchedMigrationPlan {
    let from = Partitioning::single_site(ins, sites).expect("single-site start");
    let to = SaSolver::new(SaConfig::fast_deterministic(1))
        .solve(ins, sites, &CostConfig::default())
        .expect("SA solves")
        .partitioning;
    let plan = MigrationPlan::between(ins, &from, &to, ROWS_PER_FRAGMENT).expect("plan builds");
    assert!(
        plan.estimated_bytes() > 0.0,
        "the sweep needs a migration that actually ships bytes"
    );
    let batched = plan
        .batched(ins, plan.estimated_bytes() / 6.0)
        .expect("plan batches");
    assert!(batched.n_batches() >= 2, "the sweep needs ≥ 2 boundaries");
    batched
}

/// The uninterrupted reference run: fingerprint + durable meter.
fn clean_run(ins: &Instance, batched: &BatchedMigrationPlan) -> (u64, f64) {
    let mut dep = Deployment::new(ins, &batched.plan.from, ROWS_PER_FRAGMENT).expect("deploys");
    let mut journal = MigrationJournal::new();
    let report = dep
        .migrate_batched(batched, &mut journal, &mut FaultInjector::disabled())
        .expect("fault-free migration completes");
    assert_eq!(report.batches_applied, batched.n_batches());
    (dep.state_fingerprint(), report.bytes_moved)
}

/// Crashes at boundary `k` (1-based), persists the journal through JSONL,
/// recovers, and returns the recovered deployment + journal.
fn crash_and_recover<'a>(
    ins: &'a Instance,
    batched: &BatchedMigrationPlan,
    k: usize,
) -> (Deployment<'a>, MigrationJournal) {
    let mut dep = Deployment::new(ins, &batched.plan.from, ROWS_PER_FRAGMENT).expect("deploys");
    let mut journal = MigrationJournal::new();
    let mut faults = FaultInjector::new(0xDEAD);
    faults
        .arm_spec(&format!("migration.batch:nth={k}"))
        .expect("spec parses");
    let err = dep
        .migrate_batched(batched, &mut journal, &mut faults)
        .expect_err("the armed batch must crash");
    assert!(
        matches!(err, vpart::engine::EngineError::Injected { .. }),
        "crash at boundary {k}: {err}"
    );
    // The fault fires after batch k's ops but before its commit record:
    // durable progress is exactly k - 1 batches.
    assert_eq!(journal.state().boundary(), k - 1);

    // Persist across the "crash": JSONL out, JSONL back in.
    let durable = MigrationJournal::from_jsonl(&journal.to_jsonl()).expect("journal survives");
    assert_eq!(durable.state(), journal.state());
    let recovered = Deployment::recover(ins, batched, &durable).expect("recovery succeeds");
    (recovered, durable)
}

fn sweep_resume(ins: &Instance, sites: usize) {
    let batched = batched_plan(ins, sites);
    let (clean_fp, clean_bytes) = clean_run(ins, &batched);
    for k in 1..=batched.n_batches() {
        let (mut dep, mut journal) = crash_and_recover(ins, &batched, k);
        let report = dep
            .migrate_batched(&batched, &mut journal, &mut FaultInjector::disabled())
            .expect("resume completes");
        assert_eq!(
            dep.state_fingerprint(),
            clean_fp,
            "crash at boundary {k}: resumed state must be bit-identical"
        );
        assert_eq!(
            report.bytes_moved, clean_bytes,
            "crash at boundary {k}: the durable meter must never double-count"
        );
        assert!(journal.state().complete);
    }
}

fn sweep_rollback(ins: &Instance, sites: usize) {
    let batched = batched_plan(ins, sites);
    let source_fp = Deployment::new(ins, &batched.plan.from, ROWS_PER_FRAGMENT)
        .expect("deploys")
        .state_fingerprint();
    for k in 1..=batched.n_batches() {
        let (mut dep, mut journal) = crash_and_recover(ins, &batched, k);
        dep.rollback_migration(&batched, &mut journal, &mut FaultInjector::disabled())
            .expect("rollback completes");
        assert_eq!(
            dep.state_fingerprint(),
            source_fp,
            "crash at boundary {k}: rollback must restore the source exactly"
        );
        assert!(journal.state().rolled_back);
    }
}

#[test]
fn tpcc_resume_sweep_is_bit_identical() {
    sweep_resume(&vpart::instances::tpcc(), 3);
}

#[test]
fn tpcc_rollback_sweep_restores_the_source() {
    sweep_rollback(&vpart::instances::tpcc(), 3);
}

#[test]
fn webshop_resume_sweep_is_bit_identical() {
    sweep_resume(&webshop(), 2);
}

#[test]
fn webshop_rollback_sweep_restores_the_source() {
    sweep_rollback(&webshop(), 2);
}
