//! Offline stand-in for `serde`, sufficient for this workspace.
//!
//! The real serde models serialization as a visitor protocol between data
//! structures and formats. This workspace only ever serializes to and from
//! JSON, so the shim collapses the protocol to a single self-describing
//! [`Value`] tree: [`Serialize`] renders a value into a `Value`,
//! [`Deserialize`] reconstructs one from it. The derive macros (re-exported
//! from the sibling `serde_derive` shim) generate those impls for the
//! container shapes the workspace uses; `serde_json` (also shimmed) handles
//! text encoding of `Value`.
//!
//! Integers are kept exact (`u64`/`i64` variants) rather than coerced to
//! `f64`: the model crate serializes 64-bit bitset words whose values
//! exceed `f64`'s 53-bit integer range.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer, kept exact.
    UInt(u64),
    /// Negative integer, kept exact.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view, if the value is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Exact unsigned view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Exact signed view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Int(i) => Some(i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Object field lookup as an error-carrying operation (used by derives).
    pub fn expect_field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`")))
    }

    /// String view as an error-carrying operation (used by derives).
    pub fn expect_str(&self) -> Result<&str, Error> {
        self.as_str()
            .ok_or_else(|| Error("expected a string".to_string()))
    }
}

impl fmt::Display for Value {
    /// Compact JSON encoding (non-finite floats print as `null`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => f.write_str("null"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal with escapes.
pub fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree, reporting structural mismatches as [`Error`]s.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error("expected a boolean".to_string()))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.expect_str()?.to_string())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error(format!("expected an unsigned integer, got {v:?}")))?;
                <$t>::try_from(u).map_err(|_| {
                    Error(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error(format!("expected an integer, got {v:?}")))?;
                <$t>::try_from(i).map_err(|_| {
                    Error(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected a number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error("expected an array".to_string()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) -> $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error("expected a tuple array".to_string()))?;
                if a.len() != $len {
                    return Err(Error(format!(
                        "expected a {}-tuple, got {} elements",
                        $len,
                        a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0) -> 1;
    (A: 0, B: 1) -> 2;
    (A: 0, B: 1, C: 2) -> 3;
    (A: 0, B: 1, C: 2, D: 3) -> 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_u64_round_trip() {
        let big = u64::MAX - 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Float(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn tuple_round_trip() {
        let t = (3u32, 1.5f64);
        let v = t.to_value();
        assert_eq!(<(u32, f64)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn range_errors_are_typed() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }
}
