//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds without network access, so the real `rand` is
//! unavailable. The shim provides the subset the workspace uses — seeded
//! [`rngs::StdRng`] construction, `gen`, `gen_range` over integer ranges,
//! `gen_bool` and slice shuffling — backed by **xoshiro256++** seeded via
//! SplitMix64. Streams are deterministic per seed but do *not* match the
//! real `rand`'s ChaCha-based `StdRng`; all workspace uses only require
//! self-consistency (same seed → same instance), not cross-crate stream
//! compatibility.

use std::ops::{Range, RangeInclusive};

/// The raw entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64` ∈ [0, 1), integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeded construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform range distribution. A *single* blanket
/// [`SampleRange`] impl per range kind routes through this trait, which is
/// what lets integer-literal inference resolve `gen_range(0..100) < x_u32`
/// exactly as it does with the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)` or `[start, end]` (`inclusive`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the multiply-shift unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (bound as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let extra = u64::from(inclusive);
                assert!(
                    if inclusive { start <= end } else { start < end },
                    "cannot sample empty range"
                );
                let span = (end as i128 - start as i128) as u64 + extra;
                if span == 0 {
                    // Inclusive full-domain 64-bit range: any draw is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(start < end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors; guarantees a non-zero state for any seed.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extensions (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=5u32);
            assert!((1..=5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
