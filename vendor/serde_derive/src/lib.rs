//! Offline stand-in for serde's `#[derive(Serialize, Deserialize)]`.
//!
//! This workspace builds without network access, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) is unavailable. This crate
//! re-implements the derive macros for exactly the container shapes the
//! workspace uses, parsing the raw token stream by hand:
//!
//! * structs with named fields,
//! * single-field tuple structs (treated as `#[serde(transparent)]`),
//! * enums with unit variants (serialized as their name string),
//! * the container attributes `#[serde(transparent)]` and
//!   `#[serde(try_from = "...", into = "...")]`.
//!
//! Generics, field attributes and other serde features are unsupported and
//! fail loudly at macro-expansion time rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed container attributes relevant to code generation.
#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

/// The shapes of container this derive supports.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T);` (or more fields; only 1 is supported).
    Tuple(usize),
    /// `enum E { V1, V2 }` — unit variant names in declaration order.
    Unit(Vec<String>),
}

struct Container {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c).parse().expect("generated impl parses")
}

fn is_punct(t: Option<&TokenTree>, ch: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn is_ident(t: Option<&TokenTree>, name: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(i)) if i.to_string() == name)
}

fn parse_container(input: TokenStream) -> Container {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();

    // Outer attributes: `#[...]`, capturing `#[serde(...)]` arguments.
    while is_punct(toks.get(i), '#') {
        if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if is_ident(inner.first(), "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_serde_args(args.stream(), &mut attrs);
                }
            }
        }
        i += 2;
    }

    // Visibility.
    if is_ident(toks.get(i), "pub") {
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected container name, got {other:?}"),
    };
    i += 1;
    if is_punct(toks.get(i), '<') {
        panic!("serde shim derive: generic containers are not supported ({name})");
    }

    let shape = match (kw.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(parse_tuple_arity(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Unit(parse_unit_variants(g.stream(), &name))
        }
        _ => panic!("serde shim derive: unsupported container shape for {name}"),
    };
    Container { name, attrs, shape }
}

/// Parses `transparent`, `try_from = "T"`, `into = "T"` from `#[serde(...)]`.
fn parse_serde_args(args: TokenStream, attrs: &mut ContainerAttrs) {
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            let key = id.to_string();
            if key == "transparent" {
                attrs.transparent = true;
                i += 1;
            } else if is_punct(toks.get(i + 1), '=') {
                if let Some(TokenTree::Literal(l)) = toks.get(i + 2) {
                    let val = l.to_string().trim_matches('"').to_string();
                    match key.as_str() {
                        "try_from" => attrs.try_from = Some(val),
                        "into" => attrs.into = Some(val),
                        other => {
                            panic!("serde shim derive: unsupported serde attribute `{other}`")
                        }
                    }
                }
                i += 3;
            } else {
                panic!("serde shim derive: unsupported serde attribute `{key}`");
            }
        } else {
            i += 1; // separator comma
        }
    }
}

/// Extracts field names from `{ a: A, b: Vec<(C, D)>, ... }`, skipping
/// attributes, visibility and type tokens (angle-bracket aware).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while is_punct(toks.get(i), '#') {
            i += 2;
        }
        if is_ident(toks.get(i), "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Skip `: Type` up to the next comma outside angle brackets. Commas
        // inside parens/brackets are nested token groups and invisible here.
        let mut angle: i32 = 0;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts fields of a tuple struct body `(pub A, pub B)`.
fn parse_tuple_arity(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle: i32 = 0;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => arity += 1,
                _ => {}
            }
        }
    }
    arity
}

/// Extracts unit variant names from an enum body; payload variants panic.
fn parse_unit_variants(body: TokenStream, container: &str) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while is_punct(toks.get(i), '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        variants.push(name.to_string());
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(_))) {
            panic!("serde shim derive: enum {container} has a payload variant (unsupported)");
        }
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
    }
    variants
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    if let Some(proxy) = &c.attrs.into {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     let __proxy: {proxy} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
                     ::serde::Serialize::to_value(&__proxy)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &c.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => panic!("serde shim derive: {n}-field tuple struct {name} unsupported"),
        Shape::Unit(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("Self::{v} => \"{v}\",\n"));
            }
            format!("::serde::Value::String((match self {{ {arms} }}).to_string())")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    if let Some(proxy) = &c.attrs.try_from {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let __proxy: {proxy} = ::serde::Deserialize::from_value(__v)?;\n\
                     ::std::convert::TryFrom::try_from(__proxy).map_err(::serde::Error::custom)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &c.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(__v.expect_field(\"{f}\")?)?,\n"
                ));
            }
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Shape::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        Shape::Tuple(n) => panic!("serde shim derive: {n}-field tuple struct {name} unsupported"),
        Shape::Unit(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok(Self::{v}),\n"
                ));
            }
            format!(
                "match __v.expect_str()? {{ {arms} __other => ::std::result::Result::Err(\
                     ::serde::Error::custom(format!(\"unknown variant {{__other:?}} for {name}\"))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
