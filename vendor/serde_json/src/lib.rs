//! Offline stand-in for `serde_json` over the `serde` shim's [`Value`].
//!
//! Provides the workspace-facing API surface: [`to_string`],
//! [`to_string_pretty`], [`to_value`], [`from_str`], [`from_value`] and the
//! [`json!`] macro. Text encoding follows JSON: exact integers print
//! without a fraction, floats use Rust's shortest round-trippable `{}`
//! formatting, non-finite floats encode as `null` (as in the real crate).

use std::fmt::Write as _;

pub use serde::Error;
pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Builds a [`Value`] from an object / array literal, or wraps any
/// serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_pretty(out: &mut String, v: &Value, depth: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', STEP * (depth + 1)));
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', STEP * depth));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', STEP * (depth + 1)));
                let _ = serde::write_json_string(out, k);
                out.push_str(": ");
                write_pretty(out, val, depth + 1);
            }
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', STEP * depth));
            out.push('}');
        }
        scalar => {
            let _ = write!(out, "{scalar}");
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!("expected , or ] but found {other:?}")));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!("expected , or }} but found {other:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("4").unwrap(), 4.0);
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 8.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,8]]");
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u32, "b": "x", "nested": json!([1u32, 2u32]) });
        assert_eq!(v.to_string(), r#"{"a":1,"b":"x","nested":[1,2]}"#);
    }

    #[test]
    fn pretty_print_indents() {
        let v = json!({ "k": 1u32, "a": json!([true]) });
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": 1,\n  \"a\": [\n    true\n  ]\n}"
        );
    }
}
