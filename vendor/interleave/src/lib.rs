//! Offline stand-in for the `loom` crate: exhaustive exploration of small
//! concurrent interleavings.
//!
//! This workspace builds without network access, so the real `loom` is
//! unavailable. The shim provides the subset the workspace uses — a
//! [`model`] entry point that re-executes a closure under every reachable
//! thread schedule, plus drop-in [`sync::atomic::AtomicU64`],
//! [`sync::RwLock`] and [`thread::spawn`] types whose operations are the
//! scheduling points.
//!
//! # How it works
//!
//! Logical threads run on real OS threads, but a per-execution scheduler
//! only ever lets **one** of them proceed at a time. Every shim operation
//! (atomic load/store/CAS, lock acquire, spawn) first parks the calling
//! thread and asks the scheduler to pick who runs next; each such decision
//! records the set of runnable alternatives. After an execution finishes,
//! the explorer backtracks depth-first: it replays the longest prefix of
//! decisions that still has an untried alternative and diverges there.
//! Because only shared-state operations are scheduling points, this
//! enumerates every interleaving that is distinguishable by the code under
//! test (the classic stateless-model-checking reduction), under
//! sequentially-consistent semantics.
//!
//! Threads blocked on a lock or a join are removed from the runnable set
//! until the resource is released, so lock contention is modeled rather
//! than spun on; if no thread is runnable and not all have finished, the
//! execution fails with a deadlock report. A panic on any logical thread
//! (assertion failures included) aborts scheduling, lets the remaining
//! threads run freely to completion, and re-raises from [`model`] with the
//! offending schedule attached.
//!
//! Outside a [`model`] call every shim type transparently delegates to its
//! `std` counterpart, so code compiled against the shim (e.g. behind a
//! `model-check` cargo feature) still behaves normally in ordinary tests.
//!
//! ```
//! use interleave::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // Two racing `fetch_add`s never lose an update, under any schedule.
//! interleave::model(|| {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let t = {
//!         let c = c.clone();
//!         interleave::thread::spawn(move || c.fetch_add(1, Ordering::Relaxed))
//!     };
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join().expect("no panic");
//!     assert_eq!(c.load(Ordering::Relaxed), 2);
//! });
//! ```

pub mod sync;
pub mod thread;

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// A resource a logical thread can block on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resource {
    /// A [`sync::RwLock`], by its global id.
    Lock(usize),
    /// Another logical thread finishing (join).
    Thread(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// One scheduling decision: which thread ran, out of which candidates.
#[derive(Debug, Clone)]
struct Choice {
    chosen: usize,
    enabled: Vec<usize>,
}

#[derive(Debug)]
struct ExecState {
    /// Logical thread currently holding the run token (`usize::MAX` once
    /// everything finished).
    current: usize,
    threads: Vec<Run>,
    /// Forced decisions replayed from the previous execution.
    prefix: Vec<usize>,
    /// Decisions made this execution (prefix included).
    schedule: Vec<Choice>,
    /// First failure (panic message or deadlock report).
    failure: Option<String>,
    /// After a failure: scheduling stops and threads run freely so the
    /// execution can drain without the scheduler.
    free_run: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// One execution's scheduler. Shared by all its logical threads.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    /// The active execution and this OS thread's logical id, if any.
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(exec: Arc<Execution>, id: usize) {
    CTX.with(|c| {
        let mut slot = c.borrow_mut();
        assert!(slot.is_none(), "interleave: nested model() calls");
        *slot = Some((exec, id));
    });
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Parks the calling logical thread at a scheduling point; returns once
/// the scheduler hands the run token back. No-op outside a model.
pub(crate) fn yield_point() {
    if let Some((exec, me)) = current_ctx() {
        exec.switch(me);
    }
}

impl Execution {
    fn new(prefix: Vec<usize>) -> Self {
        Self {
            state: Mutex::new(ExecState {
                current: 0,
                threads: vec![Run::Runnable],
                prefix,
                schedule: Vec::new(),
                failure: None,
                free_run: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // The scheduler mutex is only poisoned if a thread panics *inside*
        // the scheduler itself; logical-thread panics are caught upstream.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Picks the next thread to run. Caller holds the state lock and owns
    /// (or is abandoning) the run token.
    fn choose_next(&self, st: &mut ExecState) {
        if st.free_run {
            return;
        }
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.threads.iter().all(|r| *r == Run::Finished) {
                st.current = usize::MAX;
            } else {
                let blocked: Vec<(usize, Resource)> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| match r {
                        Run::Blocked(res) => Some((i, *res)),
                        _ => None,
                    })
                    .collect();
                self.record_failure(
                    st,
                    format!("deadlock: all live threads blocked {blocked:?}"),
                );
            }
            self.cv.notify_all();
            return;
        }
        let step = st.schedule.len();
        let chosen = if step < st.prefix.len() {
            let forced = st.prefix[step];
            assert!(
                enabled.contains(&forced),
                "interleave: non-deterministic test body — replayed choice {forced} \
                 not enabled at step {step} (enabled: {enabled:?})"
            );
            forced
        } else {
            enabled[0]
        };
        st.schedule.push(Choice { chosen, enabled });
        st.current = chosen;
        self.cv.notify_all();
    }

    /// The calling thread is at an operation boundary: hand the token to
    /// the scheduler and wait until it comes back.
    fn switch(&self, me: usize) {
        let mut st = self.lock();
        if st.free_run {
            return;
        }
        debug_assert_eq!(st.current, me, "switch() from a thread without the token");
        self.choose_next(&mut st);
        while !st.free_run && st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Blocks the calling thread on `r` until [`Execution::release`].
    pub(crate) fn block_on(&self, me: usize, r: Resource) {
        let mut st = self.lock();
        if st.free_run {
            return;
        }
        st.threads[me] = Run::Blocked(r);
        self.choose_next(&mut st);
        while !st.free_run && st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Marks every thread blocked on `r` runnable again (the releaser
    /// keeps the token until its next scheduling point).
    pub(crate) fn release(&self, r: Resource) {
        let mut st = self.lock();
        for t in st.threads.iter_mut() {
            if *t == Run::Blocked(r) {
                *t = Run::Runnable;
            }
        }
    }

    /// Registers a new runnable logical thread and returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Run::Runnable);
        st.threads.len() - 1
    }

    pub(crate) fn track_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().handles.push(h);
    }

    /// First wait of a freshly spawned thread: until the scheduler picks it.
    pub(crate) fn wait_for_token(&self, me: usize) {
        let mut st = self.lock();
        while !st.free_run && st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Whether `id` has finished (used by join to decide to block).
    pub(crate) fn is_finished(&self, id: usize) -> bool {
        self.lock().threads[id] == Run::Finished
    }

    /// The calling thread is done: mark finished, wake joiners, hand off.
    pub(crate) fn retire(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = Run::Finished;
        for t in st.threads.iter_mut() {
            if *t == Run::Blocked(Resource::Thread(me)) {
                *t = Run::Runnable;
            }
        }
        self.choose_next(&mut st);
    }

    /// Records the first failure and switches to free-running drain mode.
    pub(crate) fn fail(&self, msg: String) {
        let mut st = self.lock();
        self.record_failure(&mut st, msg);
        self.cv.notify_all();
    }

    fn record_failure(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            let trace: Vec<usize> = st.schedule.iter().map(|c| c.chosen).collect();
            st.failure = Some(format!("{msg} [schedule {trace:?}]"));
        }
        st.free_run = true;
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

pub(crate) fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    panic_message(payload)
}

/// Runs `f` under every reachable thread interleaving (see module docs).
/// Panics — with the failing schedule attached — as soon as any execution
/// panics, asserts, or deadlocks. Bounded at one million executions.
pub fn model<F: Fn() + 'static>(f: F) {
    model_with_limit(f, 1_000_000);
}

/// [`model`] with an explicit execution-count bound.
pub fn model_with_limit<F: Fn() + 'static>(f: F, max_executions: usize) {
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= max_executions,
            "interleave: exceeded {max_executions} executions — shrink the test"
        );
        let exec = Arc::new(Execution::new(prefix.clone()));
        set_ctx(exec.clone(), 0);
        let body = catch_unwind(AssertUnwindSafe(&f));
        if let Err(p) = &body {
            exec.fail(panic_message(p.as_ref()));
        }
        exec.retire(0);
        clear_ctx();
        // Drain every spawned OS thread before inspecting the outcome.
        let handles = std::mem::take(&mut exec.lock().handles);
        for h in handles {
            let _ = h.join();
        }
        let st = exec.lock();
        if let Some(msg) = &st.failure {
            panic!("interleave: model check failed on execution {executions}: {msg}");
        }
        // Depth-first backtrack: diverge at the deepest decision that
        // still has an untried (larger-id) alternative.
        let mut next: Option<Vec<usize>> = None;
        for k in (0..st.schedule.len()).rev() {
            let c = &st.schedule[k];
            if let Some(&alt) = c.enabled.iter().find(|&&t| t > c.chosen) {
                let mut p: Vec<usize> = st.schedule[..k].iter().map(|c| c.chosen).collect();
                p.push(alt);
                next = Some(p);
                break;
            }
        }
        drop(st);
        match next {
            Some(p) => prefix = p,
            None => return,
        }
    }
}

/// Number of executions [`model`] would run for `f` (for tests asserting
/// exhaustiveness). Panics on any failing execution, like [`model`].
pub fn count_executions<F: Fn() + 'static>(f: F) -> usize {
    let count = std::rc::Rc::new(std::cell::Cell::new(0usize));
    // model() re-runs `f` once per schedule; count via a side effect that
    // fires exactly once per execution (the closure runs on this thread).
    let c2 = count.clone();
    model(move || {
        c2.set(c2.get() + 1);
        f();
    });
    count.get()
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::RwLock;
    use std::sync::Arc;

    #[test]
    fn explores_more_than_one_schedule() {
        let n = super::count_executions(|| {
            let c = Arc::new(AtomicU64::new(0));
            let t = {
                let c = c.clone();
                super::thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            };
            c.fetch_add(1, Ordering::Relaxed);
            t.join().expect("no panic");
            assert_eq!(c.load(Ordering::Relaxed), 2);
        });
        assert!(n > 1, "expected multiple interleavings, got {n}");
    }

    #[test]
    fn finds_lost_update_in_unsynchronized_increment() {
        let r = std::panic::catch_unwind(|| {
            super::model(|| {
                let c = Arc::new(AtomicU64::new(0));
                let racy = |c: Arc<AtomicU64>| {
                    // Non-atomic read-modify-write: load then store.
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                };
                let t = {
                    let c = c.clone();
                    super::thread::spawn(move || racy(c))
                };
                racy(c.clone());
                t.join().expect("no panic");
                assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
            });
        });
        let msg = super::panic_msg(&*r.expect_err("the lost update must be found"));
        assert!(msg.contains("lost update"), "unexpected failure: {msg}");
    }

    #[test]
    fn cas_loop_survives_all_interleavings() {
        super::model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let add = |c: &AtomicU64| {
                let mut cur = c.load(Ordering::Relaxed);
                loop {
                    match c.compare_exchange_weak(
                        cur,
                        cur + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return,
                        Err(seen) => cur = seen,
                    }
                }
            };
            let t = {
                let c = c.clone();
                super::thread::spawn(move || add(&c))
            };
            add(&c);
            t.join().expect("no panic");
            assert_eq!(c.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn rwlock_excludes_writers_from_readers() {
        super::model(|| {
            // Two fields kept equal under the write lock; a racing reader
            // must never observe them mid-update.
            let pair = Arc::new(RwLock::new((0u64, 0u64)));
            let t = {
                let pair = pair.clone();
                super::thread::spawn(move || {
                    let mut g = pair.write().expect("lock");
                    g.0 += 1;
                    g.1 += 1;
                })
            };
            {
                let g = pair.read().expect("lock");
                assert_eq!(g.0, g.1, "torn read");
            }
            t.join().expect("no panic");
            let g = pair.read().expect("lock");
            assert_eq!(*g, (1, 1));
        });
    }

    #[test]
    fn reports_deadlock_on_lock_cycle() {
        let r = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(RwLock::new(0u64));
                let b = Arc::new(RwLock::new(0u64));
                let t = {
                    let (a, b) = (a.clone(), b.clone());
                    super::thread::spawn(move || {
                        let _ga = a.write().expect("lock");
                        let mut gb = match b.write() {
                            Ok(g) => g,
                            Err(_) => return, // poisoned during drain
                        };
                        *gb += 1;
                    })
                };
                {
                    let _gb = b.write().expect("lock");
                    if let Ok(mut ga) = a.write() {
                        *ga += 1;
                    }
                }
                let _ = t.join();
            });
        });
        let msg = super::panic_msg(&*r.expect_err("ABBA ordering must deadlock"));
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn passthrough_outside_model() {
        // No model active: the shims behave like their std counterparts.
        let c = AtomicU64::new(41);
        c.fetch_add(1, Ordering::SeqCst);
        assert_eq!(c.load(Ordering::SeqCst), 42);
        let l = RwLock::new(7u64);
        assert_eq!(*l.read().expect("lock"), 7);
        *l.write().expect("lock") += 1;
        assert_eq!(*l.read().expect("lock"), 8);
        let t = super::thread::spawn(|| 5u64);
        assert_eq!(t.join().expect("no panic"), 5);
    }
}
