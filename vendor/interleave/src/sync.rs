//! Model-aware drop-ins for `std::sync` primitives. Inside a
//! [`crate::model`] execution every operation is a scheduling point;
//! outside one they delegate to `std` untouched.

use crate::{current_ctx, yield_point, Resource};

/// Model-aware atomics ([`atomic::AtomicU64`]) plus the `std` `Ordering`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::yield_point;

    /// Drop-in for `std::sync::atomic::AtomicU64`; every operation is a
    /// scheduling point under a model. The memory ordering argument is
    /// accepted for source compatibility — the explorer runs under
    /// sequentially-consistent semantics (its scheduler mutex orders all
    /// operations), so schedules it proves safe are safe for any
    /// ordering, while `Relaxed`-specific reordering bugs are out of
    /// scope (interleaving bugs, the common case, are not).
    #[derive(Debug, Default)]
    pub struct AtomicU64 {
        inner: std::sync::atomic::AtomicU64,
    }

    impl AtomicU64 {
        /// A new atomic holding `v`.
        pub const fn new(v: u64) -> Self {
            Self {
                inner: std::sync::atomic::AtomicU64::new(v),
            }
        }

        /// Model-aware `load`.
        pub fn load(&self, order: Ordering) -> u64 {
            yield_point();
            self.inner.load(order)
        }

        /// Model-aware `store`.
        pub fn store(&self, v: u64, order: Ordering) {
            yield_point();
            self.inner.store(v, order);
        }

        /// Model-aware `swap`.
        pub fn swap(&self, v: u64, order: Ordering) -> u64 {
            yield_point();
            self.inner.swap(v, order)
        }

        /// Model-aware `fetch_add`.
        pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
            yield_point();
            self.inner.fetch_add(v, order)
        }

        /// Model-aware `compare_exchange`.
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            yield_point();
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// Model-aware `compare_exchange_weak` (never fails spuriously —
        /// the explorer covers genuine interference instead).
        pub fn compare_exchange_weak(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            yield_point();
            self.inner
                .compare_exchange_weak(current, new, success, failure)
        }
    }
}

/// Distinct ids so blocked threads can be woken by the right release.
static NEXT_LOCK_ID: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// How long a free-running (post-failure) or passthrough `try_*` loop may
/// spin before concluding the execution cannot drain.
const SPIN_LIMIT: usize = 100_000;

/// Drop-in for `std::sync::RwLock`. Under a model, acquisition attempts
/// are scheduling points and contended threads leave the runnable set
/// until the holder releases (so lock waits are modeled, not spun).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    id: usize,
}

/// Read guard for [`RwLock`]; releasing wakes modeled waiters.
pub struct RwLockReadGuard<'a, T> {
    // Option so Drop can release the std guard before notifying waiters.
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    exec: Option<std::sync::Arc<crate::Execution>>,
    lock_id: usize,
}

/// Write guard for [`RwLock`]; releasing wakes modeled waiters.
pub struct RwLockWriteGuard<'a, T> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    exec: Option<std::sync::Arc<crate::Execution>>,
    lock_id: usize,
}

impl<T> RwLock<T> {
    /// A new lock holding `v`.
    pub fn new(v: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(v),
            id: NEXT_LOCK_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Model-aware shared acquisition.
    pub fn read(&self) -> std::sync::LockResult<RwLockReadGuard<'_, T>> {
        let Some((exec, me)) = current_ctx() else {
            return wrap_read(self.inner.read(), None, self.id);
        };
        let mut spins = 0usize;
        loop {
            yield_point();
            match self.inner.try_read() {
                Ok(g) => {
                    return Ok(RwLockReadGuard {
                        inner: Some(g),
                        exec: Some(exec.clone()),
                        lock_id: self.id,
                    })
                }
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    return wrap_read(Err(p), Some(exec.clone()), self.id)
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    exec.block_on(me, Resource::Lock(self.id));
                    spins += 1;
                    assert!(spins <= SPIN_LIMIT, "interleave: lock never released");
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Model-aware exclusive acquisition.
    pub fn write(&self) -> std::sync::LockResult<RwLockWriteGuard<'_, T>> {
        let Some((exec, me)) = current_ctx() else {
            return wrap_write(self.inner.write(), None, self.id);
        };
        let mut spins = 0usize;
        loop {
            yield_point();
            match self.inner.try_write() {
                Ok(g) => {
                    return Ok(RwLockWriteGuard {
                        inner: Some(g),
                        exec: Some(exec.clone()),
                        lock_id: self.id,
                    })
                }
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    return wrap_write(Err(p), Some(exec.clone()), self.id)
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    exec.block_on(me, Resource::Lock(self.id));
                    spins += 1;
                    assert!(spins <= SPIN_LIMIT, "interleave: lock never released");
                    std::thread::yield_now();
                }
            }
        }
    }
}

fn wrap_read<'a, T>(
    r: std::sync::LockResult<std::sync::RwLockReadGuard<'a, T>>,
    exec: Option<std::sync::Arc<crate::Execution>>,
    lock_id: usize,
) -> std::sync::LockResult<RwLockReadGuard<'a, T>> {
    let mk = |g, exec| RwLockReadGuard {
        inner: Some(g),
        exec,
        lock_id,
    };
    match r {
        Ok(g) => Ok(mk(g, exec)),
        Err(p) => Err(std::sync::PoisonError::new(mk(p.into_inner(), exec))),
    }
}

fn wrap_write<'a, T>(
    r: std::sync::LockResult<std::sync::RwLockWriteGuard<'a, T>>,
    exec: Option<std::sync::Arc<crate::Execution>>,
    lock_id: usize,
) -> std::sync::LockResult<RwLockWriteGuard<'a, T>> {
    let mk = |g, exec| RwLockWriteGuard {
        inner: Some(g),
        exec,
        lock_id,
    };
    match r {
        Ok(g) => Ok(mk(g, exec)),
        Err(p) => Err(std::sync::PoisonError::new(mk(p.into_inner(), exec))),
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live until drop")
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live until drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // Release the underlying lock before waking modeled waiters so a
        // woken thread's try_read() observes it free.
        drop(self.inner.take());
        if let Some(exec) = &self.exec {
            exec.release(Resource::Lock(self.lock_id));
        }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(exec) = &self.exec {
            exec.release(Resource::Lock(self.lock_id));
        }
    }
}
