//! Model-aware drop-in for `std::thread::spawn`/`JoinHandle`. Inside a
//! [`crate::model`] execution, spawned closures become logical threads of
//! the scheduler; outside one this is a plain `std::thread::spawn`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::{clear_ctx, current_ctx, panic_msg, set_ctx, yield_point, Resource};

enum Handle<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<crate::Execution>,
        id: usize,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
}

/// Join handle mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Handle<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (`Err` with
    /// the panic payload if it panicked). Under a model, joining is a
    /// blocking operation the scheduler understands: the joiner leaves
    /// the runnable set until the target retires.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Handle::Std(h) => h.join(),
            Handle::Model { exec, id, result } => {
                if let Some((_, me)) = current_ctx() {
                    while !exec.is_finished(id) {
                        exec.block_on(me, Resource::Thread(id));
                        // block_on returns immediately in free-run drain
                        // mode; don't busy-wait the target off the CPU.
                        std::thread::yield_now();
                    }
                } else {
                    // Joined from outside the model (after a drain); the
                    // OS thread is reaped by the model runner.
                    while !exec.is_finished(id) {
                        std::thread::yield_now();
                    }
                }
                result
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("retired thread stored its result")
            }
        }
    }
}

/// Spawns `f` as a logical thread of the active model (or a real thread
/// when no model is active).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((exec, _me)) = current_ctx() else {
        return JoinHandle(Handle::Std(std::thread::spawn(f)));
    };
    let id = exec.register_thread();
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let os_handle = {
        let exec = exec.clone();
        let result = result.clone();
        std::thread::spawn(move || {
            set_ctx(exec.clone(), id);
            exec.wait_for_token(id);
            let r = catch_unwind(AssertUnwindSafe(f));
            if let Err(p) = &r {
                exec.fail(panic_msg(p.as_ref()));
            }
            *result.lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
            clear_ctx();
            exec.retire(id);
        })
    };
    exec.track_handle(os_handle);
    // The new thread is runnable: make its existence a scheduling point so
    // it can be picked before the spawner's next operation.
    yield_point();
    JoinHandle(Handle::Model { exec, id, result })
}
