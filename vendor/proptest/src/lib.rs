//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with a `proptest_config` attribute, range and
//! [`any`] strategies, tuple composition, [`collection::vec`],
//! `prop_map` / `prop_flat_map`, and the `prop_assert*` macros.
//!
//! Unlike the real crate there is **no shrinking** and no failure
//! persistence: each test runs `cases` deterministic seeded samples
//! (seeded from the test name) and failures panic with the assertion
//! message. That keeps the dependency offline-buildable while preserving
//! the tests' coverage intent.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// Strategy: a recipe producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a dependent strategy from each value, then samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Types with a whole-domain strategy via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The whole-domain strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// `n` independent samples of `strategy` as a `Vec`.
    pub fn vec<S: Strategy>(strategy: S, n: usize) -> VecStrategy<S> {
        VecStrategy { strategy, n }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        strategy: S,
        n: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.n).map(|_| self.strategy.sample(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` for the `cases` knob.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Stable per-test seed from the test name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds the runner RNG (used by the [`proptest!`] expansion, which cannot
/// name `rand` from the caller's crate root).
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Declares property tests: each `fn name(pat in strategy) { .. }` becomes
/// a `#[test]` running `cases` seeded samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strategy = $strat;
                let mut __rng = $crate::new_rng($crate::seed_from_name(stringify!($name)));
                for __case in 0..__cfg.cases {
                    let $pat = $crate::Strategy::sample(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a property test (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// One-`use` import of the strategy API and macros.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_compose() {
        let strat = (1usize..4, any::<bool>()).prop_map(|(n, b)| if b { n * 2 } else { n });
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..8).contains(&v));
        }
    }

    #[test]
    fn flat_map_uses_outer_value() {
        let strat = (2usize..5).prop_flat_map(|n| collection::vec(0.0..1.0f64, n));
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_runs_cases(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(pair in (any::<u64>(), 0u8..3)) {
            prop_assert!(pair.1 < 3);
            prop_assert_ne!(pair.1, 200);
        }
    }
}
