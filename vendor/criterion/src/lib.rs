//! Offline stand-in for `criterion`: times each benchmark over a few
//! iterations and prints mean wall-clock time. No statistics, plots or
//! history — just enough to keep `cargo bench` runnable without network
//! access. The API mirrors the subset the workspace's benches use.
//!
//! Two environment knobs support CI use:
//!
//! * `CRITERION_SAMPLE_SIZE=n` — overrides every configured sample size
//!   (set it to 1 for a quick smoke run),
//! * `CRITERION_JSON=path` — appends one JSON line per benchmark
//!   (`{"name": ..., "mean_secs": ..., "iters": ...}`) to `path`, so a
//!   pipeline can collect machine-readable results.

use std::time::{Duration, Instant};

/// The `CRITERION_SAMPLE_SIZE` override, if set to a positive integer.
fn sample_size_override() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

/// Appends one benchmark result to the `CRITERION_JSON` file, if set.
fn append_json(id: &str, mean: Duration, iters: u32) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    use std::io::Write;
    let line = format!(
        "{{\"name\":\"{}\",\"mean_secs\":{},\"iters\":{}}}\n",
        id.replace('"', "'"),
        mean.as_secs_f64(),
        iters
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// How batched inputs are grouped (accepted and ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Accepts CLI arguments (ignored; present for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: sample_size_override().unwrap_or(self.sample_size),
            total: Duration::ZERO,
            timed: 0,
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            parent: self,
            sample_size: None,
        }
    }

    /// Prints the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named group sharing configuration (mirrors criterion's group API).
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: sample_size_override()
                .or(self.sample_size)
                .unwrap_or(self.parent.sample_size),
            total: Duration::ZERO,
            timed: 0,
        };
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    iters: usize,
    total: Duration,
    timed: u32,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.timed += 1;
            drop(out);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.total += start.elapsed();
            self.timed += 1;
            drop(out);
        }
    }

    fn report(&self, id: &str) {
        if self.timed == 0 {
            println!("{id:<44} (not measured)");
        } else {
            let mean = self.total / self.timed;
            println!("{id:<44} mean {mean:>12.3?} over {} iters", self.timed);
            append_json(id, mean, self.timed);
        }
    }
}

/// Prevents the optimizer from discarding a value (re-export of the std
/// hint; the real criterion's `black_box` predates it).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_iters() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        c.sample_size(3).bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| {
                    runs += 1;
                    black_box(x)
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }
}
