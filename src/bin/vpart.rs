//! `vpart` — command-line partitioning advisor.
//!
//! ```text
//! vpart list     [--json]
//! vpart solve    --instance tpcc --sites 3 [--algo qp|sa|exact] [--p 8]
//!                [--lambda 0.1] [--disjoint] [--seed 42] [--time-limit 60]
//!                [--layout] [--json]
//! vpart solve    --schema schema.sql --log queries.log --sites 2 ...
//! vpart ingest   --schema schema.sql --log queries.log [--out instance.json]
//! vpart simulate --instance tpcc --sites 2 [--rounds 5] [--seed 42]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use vpart::core::{evaluate, CostConfig};
use vpart::engine::{Deployment, Trace};
use vpart::ingest::{IngestOptions, StatsFormat};
use vpart::model::{report, Partitioning};
use vpart::prelude::*;
use vpart::Algorithm;

fn usage() -> &'static str {
    "vpart — vertical partitioning advisor for OLTP workloads\n\
     \n\
     USAGE:\n\
       vpart list     [--json]\n\
       vpart solve    --instance <name|file.json> --sites <k> [--algo qp|sa|exact]\n\
                      [--p <f>] [--lambda <f>] [--disjoint] [--seed <n>]\n\
                      [--restarts <n>] [--threads <n>]\n\
                      [--time-limit <secs>] [--layout] [--json]\n\
       vpart solve    --schema <ddl.sql> --log <queries.log> --sites <k> [...]\n\
       vpart solve    --schema <ddl.sql> --stats <dump> --stats-format <fmt> ...\n\
       vpart ingest   --schema <ddl.sql> (--log <queries.log> |\n\
                      --stats <dump> [--stats-format pgss-csv|pgss-json|perf-schema])\n\
                      [--out <file.json>] [--name <s>] [--text-width <bytes>]\n\
                      [--default-rows <n>] [--sample-rate <f>] [--confidence-min <n>]\n\
                      [--lenient] [--strict] [--json]\n\
       vpart simulate --instance <name> --sites <k> [--rounds <n>] [--seed <n>]\n\
     \n\
     Instances: `tpcc`, any rnd class name (e.g. rndAt8x15, rndBt16x100u50), a\n\
     JSON instance file, a SQL schema + query log via --schema/--log, or a\n\
     schema + statistics dump (pg_stat_statements CSV/JSON, MySQL\n\
     performance_schema digest CSV/TSV) via --schema/--stats\n\
     (`vpart ingest` converts either into the JSON form and prints a\n\
     per-statement ingestion report; see README \"Bring your own workload\").\n\
     --sample-rate scales sampled inputs up to population estimates;\n\
     --strict exits non-zero when any skip or low-confidence diagnostic\n\
     remains. --restarts runs that many independent SA chains (seeds\n\
     seed..seed+n) over at most --threads OS threads and keeps the best;\n\
     results depend only on (seed, restarts), not on --threads, unless\n\
     a chain is cut off by --time-limit (flagged in the restart stats).\n\
     Defaults: p = 8 (paper), lambda = 0.9 (see DESIGN.md on the\n\
     paper's λ), algo = sa, restarts = 1, threads = 1,\n\
     stats-format = pgss-csv."
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}", args[i]))?;
        match key {
            "disjoint" | "layout" | "json" | "lenient" | "strict" => {
                flags.insert(key.to_owned(), "true".to_owned());
                i += 1;
            }
            _ => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                flags.insert(key.to_owned(), value.clone());
                i += 2;
            }
        }
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: {v:?}")),
    }
}

fn ingest_options(flags: &HashMap<String, String>) -> Result<IngestOptions, String> {
    let defaults = IngestOptions::default();
    let mut opts = IngestOptions::default()
        .with_text_width(get(flags, "text-width", defaults.text_width)?)
        .with_default_rows(get(flags, "default-rows", defaults.default_rows)?)
        .with_sample_rate(get(flags, "sample-rate", defaults.sample_rate)?)
        .with_confidence_min_calls(get(flags, "confidence-min", defaults.confidence_min_calls)?);
    if let Some(name) = flags.get("name") {
        opts = opts.with_name(name.clone());
    }
    if flags.contains_key("lenient") {
        opts = opts.lenient();
    }
    Ok(opts)
}

/// Ingests `--schema` plus either `--log` or `--stats`/`--stats-format`
/// per the shared flag conventions (the name defaults to the schema path;
/// `--lenient`/`--text-width`/`--sample-rate` apply).
fn run_ingest(flags: &HashMap<String, String>) -> Result<vpart::ingest::Ingestion, String> {
    let schema_path = flags
        .get("schema")
        .ok_or_else(|| "--schema is required".to_owned())?;
    let schema_sql = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let mut opts = ingest_options(flags)?;
    if !flags.contains_key("name") {
        opts = opts.with_name(schema_path.clone());
    }
    match (flags.get("log"), flags.get("stats")) {
        (Some(_), Some(_)) => Err("--log and --stats are mutually exclusive".to_owned()),
        (Some(log_path), None) => {
            let log = std::fs::read_to_string(log_path)
                .map_err(|e| format!("cannot read {log_path}: {e}"))?;
            vpart::ingest::ingest(&schema_sql, &log, &opts).map_err(|e| e.to_string())
        }
        (None, Some(stats_path)) => {
            let format_name = flags.get("stats-format").map(String::as_str);
            let format = match format_name {
                None => StatsFormat::PgssCsv,
                Some(name) => StatsFormat::parse(name).ok_or_else(|| {
                    format!("unknown --stats-format {name:?} (pgss-csv|pgss-json|perf-schema)")
                })?,
            };
            let dump = std::fs::read_to_string(stats_path)
                .map_err(|e| format!("cannot read {stats_path}: {e}"))?;
            vpart::ingest::ingest_stats(&schema_sql, &dump, format, &opts)
                .map_err(|e| e.to_string())
        }
        (None, None) => Err("--schema also needs --log or --stats".to_owned()),
    }
}

/// Ingests for `solve`, printing the loss/confidence report to stderr.
fn ingest_from_flags(flags: &HashMap<String, String>) -> Result<Instance, String> {
    let out = run_ingest(flags)?;
    if !out.report.is_lossless() || out.report.has_diagnostics() {
        eprint!("{}", out.report);
    }
    Ok(out.instance)
}

fn load_instance(flags: &HashMap<String, String>) -> Result<Instance, String> {
    if flags.contains_key("schema") {
        return ingest_from_flags(flags);
    }
    let name = flags
        .get("instance")
        .ok_or_else(|| "--instance (or --schema/--log) is required".to_owned())?;
    if let Some(ins) = vpart::instances::by_name(name) {
        return Ok(ins);
    }
    // Fall back to an instance JSON file (the `vpart ingest --out` format).
    if std::path::Path::new(name).exists() {
        let json = std::fs::read_to_string(name).map_err(|e| format!("cannot read {name}: {e}"))?;
        return serde_json::from_str(&json)
            .map_err(|e| format!("{name} is not a valid instance file: {e}"));
    }
    Err(format!(
        "unknown instance {name:?} (not a catalog name, not a file); try `vpart list`"
    ))
}

fn cost_config(flags: &HashMap<String, String>) -> Result<CostConfig, String> {
    let cfg = CostConfig::default()
        .with_p(get(flags, "p", 8.0)?)
        .with_lambda(get(flags, "lambda", 0.9)?);
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn cmd_list(flags: HashMap<String, String>) -> Result<(), String> {
    if flags.contains_key("json") {
        let entries: Vec<serde_json::Value> = vpart::instances::names()
            .into_iter()
            .map(|name| {
                let ins = vpart::instances::by_name(name).expect("catalog name resolves");
                serde_json::json!({
                    "name": name,
                    "attrs": ins.n_attrs(),
                    "txns": ins.n_txns(),
                    "tables": ins.n_tables(),
                })
            })
            .collect();
        println!("{}", serde_json::Value::Array(entries));
        return Ok(());
    }
    println!("available instances:");
    for name in vpart::instances::names() {
        let ins = vpart::instances::by_name(name).expect("catalog name resolves");
        println!(
            "  {name:<16} |A| = {:<5} |T| = {:<4} tables = {}",
            ins.n_attrs(),
            ins.n_txns(),
            ins.n_tables()
        );
    }
    Ok(())
}

fn cmd_ingest(flags: HashMap<String, String>) -> Result<(), String> {
    let out = run_ingest(&flags)?;
    let json = serde_json::to_string_pretty(&out.instance).map_err(|e| e.to_string())?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    if flags.contains_key("json") {
        let r = &out.report;
        let confidence: Vec<serde_json::Value> = r
            .confidence
            .iter()
            .map(|c| {
                serde_json::json!({
                    "txn": c.txn,
                    "observed": c.observed,
                    "scaled": c.scaled,
                    "low": c.level == vpart::ingest::ConfidenceLevel::LowConfidence,
                })
            })
            .collect();
        eprintln!(
            "{}",
            serde_json::json!({
                "tables": r.tables,
                "attrs": r.attrs,
                "txns": r.txns,
                "queries": r.queries,
                "statements_seen": r.statements_seen,
                "statements_ingested": r.statements_ingested,
                "txn_occurrences": r.txn_occurrences,
                "skipped": r.skipped.len(),
                "width_fallbacks": r.width_fallbacks.len(),
                "row_estimates": r.row_estimates.len(),
                "row_guesses": r.row_estimates.iter().filter(|e| !e.pk_equality).count(),
                "lossless": r.is_lossless(),
                "sample_rate": r.sample_rate,
                "confidence": serde_json::Value::Array(confidence),
                "low_confidence": r.low_confidence().count(),
            })
        );
    } else {
        eprint!("{}", out.report);
    }
    if flags.contains_key("strict") && out.report.has_diagnostics() {
        return Err(format!(
            "--strict: ingestion left {} skipped statement(s) and {} low-confidence \
             template(s)",
            out.report.skipped.len(),
            out.report.low_confidence().count()
        ));
    }
    Ok(())
}

fn cmd_solve(flags: HashMap<String, String>) -> Result<(), String> {
    let ins = load_instance(&flags)?;
    let sites: usize = get(&flags, "sites", 2)?;
    let cost = cost_config(&flags)?;
    let seed: u64 = get(&flags, "seed", 0xC0FFEE)?;
    let time_limit: f64 = get(&flags, "time-limit", 300.0)?;
    let restarts: usize = get(&flags, "restarts", 1)?;
    let threads: usize = get(&flags, "threads", 1)?;
    let algo_name = flags.get("algo").map(String::as_str).unwrap_or("sa");
    let disjoint = flags.contains_key("disjoint");

    let algorithm = match algo_name {
        "qp" => {
            let mut qc = QpConfig::with_time_limit(time_limit);
            if disjoint {
                qc = qc.disjoint();
            }
            Algorithm::Qp(qc)
        }
        "sa" => {
            if disjoint {
                return Err("--disjoint requires --algo qp".into());
            }
            Algorithm::Sa(SaConfig {
                seed,
                time_limit: std::time::Duration::from_secs_f64(time_limit),
                restarts,
                threads,
                ..Default::default()
            })
        }
        "exact" => Algorithm::Exact(ExactConfig::default()),
        other => return Err(format!("unknown algorithm {other:?} (qp|sa|exact)")),
    };

    let single = Partitioning::single_site(&ins, 1).map_err(|e| e.to_string())?;
    let baseline = evaluate(&ins, &single, &cost).objective4;
    let r = vpart::solve(&ins, sites, &algorithm, &cost).map_err(|e| e.to_string())?;

    if flags.contains_key("json") {
        let restart_stats: Vec<serde_json::Value> = r
            .restarts
            .iter()
            .map(|s| {
                serde_json::json!({
                    "restart": s.restart,
                    "seed": s.seed,
                    "objective6": s.objective6,
                    "objective4": s.objective4,
                    "levels": s.levels,
                    "iterations": s.iterations,
                    "accepted": s.accepted,
                    "elapsed_secs": s.elapsed.as_secs_f64(),
                    "timed_out": s.timed_out,
                    "winner": s.winner,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "instance": ins.name(),
                "sites": sites,
                "algorithm": algo_name,
                "cost": r.breakdown.objective4,
                "baseline_single_site": baseline,
                "reduction": 1.0 - r.breakdown.objective4 / baseline,
                "read": r.breakdown.read,
                "write": r.breakdown.write,
                "transfer": r.breakdown.transfer,
                "max_site_work": r.breakdown.max_work,
                "optimal": r.is_optimal(),
                "elapsed_secs": r.elapsed.as_secs_f64(),
                "restarts": serde_json::Value::Array(restart_stats),
                "partitioning": r.partitioning,
            })
        );
        return Ok(());
    }

    println!("instance        {}", ins.name());
    println!("sites           {sites}");
    println!("algorithm       {algo_name} ({})", r.detail);
    println!("cost (obj 4)    {:.1}", r.breakdown.objective4);
    println!("  read          {:.1}", r.breakdown.read);
    println!("  write         {:.1}", r.breakdown.write);
    println!(
        "  transfer      {:.1} (p = {})",
        r.breakdown.transfer, cost.p
    );
    println!("max site work   {:.1}", r.breakdown.max_work);
    println!("single site     {baseline:.1}");
    println!(
        "reduction       {:.1}%{}",
        (1.0 - r.breakdown.objective4 / baseline) * 100.0,
        if r.is_optimal() {
            " (proven optimal)"
        } else {
            ""
        }
    );
    println!("elapsed         {:.2?}", r.elapsed);
    if r.restarts.len() > 1 {
        println!(
            "restarts        (best of {}, per-chain budget)",
            r.restarts.len()
        );
        for s in &r.restarts {
            println!(
                "  #{:<2} seed {:<12} obj6 {:>14.1}  {:>7} iters  {:.2?}{}{}",
                s.restart,
                s.seed,
                s.objective6,
                s.iterations,
                s.elapsed,
                if s.timed_out { "  [timed out]" } else { "" },
                if s.winner { "  <- winner" } else { "" }
            );
        }
    }
    if flags.contains_key("layout") {
        println!("\n{}", report::render_partitioning(&ins, &r.partitioning));
    } else {
        println!("\n{}", report::render_summary(&ins, &r.partitioning));
    }
    Ok(())
}

fn cmd_simulate(flags: HashMap<String, String>) -> Result<(), String> {
    let ins = load_instance(&flags)?;
    let sites: usize = get(&flags, "sites", 2)?;
    let rounds: usize = get(&flags, "rounds", 5)?;
    let seed: u64 = get(&flags, "seed", 0xC0FFEE)?;
    let cost = cost_config(&flags)?;

    let r = SaSolver::new(SaConfig {
        seed,
        ..Default::default()
    })
    .solve(&ins, sites, &cost)
    .map_err(|e| e.to_string())?;
    let predicted = &r.breakdown;
    let mut dep = Deployment::new(&ins, &r.partitioning, 64).map_err(|e| e.to_string())?;
    let measured = dep
        .execute(&Trace::uniform(&ins, rounds))
        .map_err(|e| e.to_string())?;
    let k = rounds as f64;
    let t = measured.totals();

    println!("instance {} on {sites} sites, {rounds} rounds", ins.name());
    println!("                 predicted(×{rounds})   measured");
    println!(
        "bytes read       {:>14.1} {:>14.1}",
        k * predicted.read,
        t.bytes_read
    );
    println!(
        "bytes written    {:>14.1} {:>14.1}",
        k * predicted.write,
        t.bytes_written
    );
    println!(
        "bytes shipped    {:>14.1} {:>14.1}",
        k * predicted.transfer,
        measured.transfer_bytes
    );
    println!(
        "objective (4)    {:>14.1} {:>14.1}",
        k * predicted.objective4,
        measured.measured_objective4(cost.p)
    );
    println!(
        "single-sited executions: {}/{} ({:.0}%)",
        measured.single_sited_executions,
        measured.executions,
        measured.single_sited_ratio() * 100.0
    );
    println!("stored bytes across sites: {}", dep.stored_bytes());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "list" => parse_flags(&args[1..]).and_then(cmd_list),
        "solve" => parse_flags(&args[1..]).and_then(cmd_solve),
        "ingest" => parse_flags(&args[1..]).and_then(cmd_ingest),
        "simulate" => parse_flags(&args[1..]).and_then(cmd_simulate),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
