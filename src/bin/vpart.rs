//! `vpart` — command-line partitioning advisor.
//!
//! ```text
//! vpart list     [--json]
//! vpart solve    --instance tpcc --sites 3 [--algo qp|sa|exact] [--p 8]
//!                [--lambda 0.1] [--disjoint] [--seed 42] [--time-limit 60]
//!                [--layout] [--json]
//! vpart solve    --schema schema.sql --log queries.log --sites 2 ...
//! vpart ingest   --schema schema.sql --log queries.log [--out instance.json]
//! vpart simulate --instance tpcc --sites 2 [--rounds 5] [--seed 42]
//! vpart replay   --instance tpcc --sites 3 [--partitioning part.json]
//!                [--threads 4] [--duration 1] [--txns 1000] [--rows 256]
//!                [--shards 32] [--skew zipf:0.99] [--fault replay.pass:nth=1]
//!                [--error-bound 0.15] [--json]
//! vpart watch    --schema schema.sql --log p1.log,p2.log --sites 2
//!                [--interval 2] [--decay 0.5 | --window 3]
//!                [--drift-threshold 0.05] [--rows 64] [--hysteresis 1]
//!                [--amortize-epochs 0] [--max-retries 3]
//!                [--migration-batch-bytes 4096] [--fault spec] [--json]
//! vpart inspect  trace.jsonl [--health health.json]
//! vpart inspect  --journal journal.jsonl [--health health.json]
//! vpart monitor  trace.jsonl [--follow] [--metrics health.json]
//!                [--rules rules.json] [--json]
//! ```
//!
//! `solve` and `watch` take `--trace-out FILE` (structured span/event
//! trace, JSONL) and `--metrics-out FILE` (Prometheus-style exposition);
//! `inspect` summarizes a recorded trace. `watch` and `replay` also take
//! the live-health flags `--health-out FILE` (time-series + alert
//! snapshot, rewritten each tick), `--alerts-exit` (exit non-zero while
//! a critical alert fires), `--rules FILE` (declarative alert rules
//! replacing the built-ins) and `--flight-dir DIR` (crash flight
//! recorder); `monitor` renders the health view of a recorded trace.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::process::ExitCode;
use vpart::core::{evaluate, CostConfig};
use vpart::engine::{Deployment, Trace};
use vpart::ingest::{IngestOptions, StatsFormat};
use vpart::model::{report, Partitioning};
use vpart::obs::{AlertEvent, HealthMonitor, HealthSnapshot, TimeSeriesStore};
use vpart::prelude::*;
use vpart::Algorithm;

fn usage() -> &'static str {
    "vpart — vertical partitioning advisor for OLTP workloads\n\
     \n\
     USAGE:\n\
       vpart list     [--json]\n\
       vpart solve    --instance <name|file.json> --sites <k> [--algo qp|sa|exact]\n\
                      [--p <f>] [--lambda <f>] [--disjoint] [--seed <n>]\n\
                      [--restarts <n>] [--threads <n>]\n\
                      [--time-limit <secs>] [--layout] [--json]\n\
                      [--trace-out <file.jsonl>] [--metrics-out <file.prom>]\n\
       vpart solve    --schema <ddl.sql> --log <queries.log> --sites <k> [...]\n\
       vpart solve    --schema <ddl.sql> --stats <dump> --stats-format <fmt> ...\n\
       vpart ingest   --schema <ddl.sql> (--log <queries.log> |\n\
                      --stats <dump> [--stats-format pgss-csv|pgss-json|perf-schema])\n\
                      [--out <file.json>] [--name <s>] [--text-width <bytes>]\n\
                      [--default-rows <n>] [--sample-rate <f>] [--confidence-min <n>]\n\
                      [--lenient] [--strict] [--json]\n\
       vpart simulate --instance <name> --sites <k> [--rounds <n>] [--seed <n>]\n\
       vpart replay   --instance <name|file.json> --sites <k>\n\
                      [--partitioning <part.json>] [--threads <n>] [--shards <n>]\n\
                      [--rows <n>] [--txns <n> | --rounds <n>] [--duration <secs>]\n\
                      [--seed <n>] [--skew uniform|zipf:<theta>|hotspot:<frac>]\n\
                      [--fault <point:trigger,...>] [--error-bound <f>] [--json]\n\
                      [--trace-out <file.jsonl>] [--metrics-out <file.prom>]\n\
                      [--health-out <file.json>] [--alerts-exit]\n\
                      [--rules <rules.json>] [--flight-dir <dir>]\n\
       vpart replay   --schema <ddl.sql> --log <queries.log> --sites <k> [...]\n\
       vpart watch    --schema <ddl.sql> (--log <p1,p2,...> | --stats <p1,p2,...>\n\
                      [--stats-format <fmt>]) --sites <k> [--interval <epochs>]\n\
                      [--decay <f> | --window <n>] [--drift-threshold <f>]\n\
                      [--rows <n>] [--restarts <n>] [--threads <n>]\n\
                      [--hysteresis <epochs>] [--amortize-epochs <n>]\n\
                      [--max-retries <n>] [--migration-batch-bytes <B>]\n\
                      [--fault <point:trigger,...>] [--json]\n\
                      [--trace-out <file.jsonl>] [--metrics-out <file.prom>]\n\
                      [--health-out <file.json>] [--alerts-exit]\n\
                      [--rules <rules.json>] [--flight-dir <dir>]\n\
       vpart inspect  <trace.jsonl> [--health <health.json>] |\n\
                      --journal <journal.jsonl> [--health <health.json>] |\n\
                      --health <health.json>\n\
       vpart monitor  <trace.jsonl> [--follow] [--poll-ms <n>] [--max-polls <n>]\n\
                      [--metrics <health.json>] [--rules <rules.json>] [--json]\n\
     \n\
     Instances: `tpcc`, any rnd class name (e.g. rndAt8x15, rndBt16x100u50), a\n\
     JSON instance file, a SQL schema + query log via --schema/--log, or a\n\
     schema + statistics dump (pg_stat_statements CSV/JSON, MySQL\n\
     performance_schema digest CSV/TSV) via --schema/--stats\n\
     (`vpart ingest` converts either into the JSON form and prints a\n\
     per-statement ingestion report; see README \"Bring your own workload\").\n\
     --sample-rate scales sampled inputs up to population estimates;\n\
     --strict exits non-zero when any skip or low-confidence diagnostic\n\
     remains. --restarts runs that many independent SA chains (seeds\n\
     seed..seed+n) over at most --threads OS threads and keeps the best;\n\
     results depend only on (seed, restarts), not on --threads, unless\n\
     a chain is cut off by --time-limit (flagged in the restart stats).\n\
     --probe-levels <n> races the chains portfolio-style: after n\n\
     temperature levels the dominated half is cut off.\n\
     `vpart replay` is the production-rate load harness: it deploys the\n\
     partitioning (from --partitioning — a solve-output or bare\n\
     partitioning JSON — or a fresh seeded SA solve) as sharded columnar\n\
     storage, replays a seeded stream of --txns weighted executions (or\n\
     --rounds uniform rounds) with --threads workers until --duration\n\
     elapses, and reports txns/sec plus the model error: true physical\n\
     bytes vs the cost model's prediction. Byte meters are bit-identical\n\
     across thread counts (fixed --shards row-range shards). The replayed\n\
     stream also feeds the online tracker (tracker weight in the output).\n\
     --error-bound exits non-zero when |model error| exceeds the bound.\n\
     --skew picks the row-touch distribution inside each table\n\
     (uniform, zipf:<theta> with 0<theta<1, or hotspot:<frac> sending\n\
     1-frac of the traffic to the first frac of the rows); skew changes\n\
     which rows are touched (checksum) but not byte totals.\n\
     --fault arms deterministic fail points (comma-separated\n\
     `point:nth=N|prob=P|once` specs, seeded from --seed): replay.pass\n\
     crashes a pass (discarded and retried, meters bit-identical),\n\
     migration.batch / migration.rollback / watch.resolve crash the\n\
     watch loop's migration machinery (rolled back, retried with\n\
     backoff, degraded after --max-retries failures).\n\
     `vpart watch` replays comma-separated workload phases in epochs\n\
     (--interval epochs per phase) through the online repartitioning\n\
     loop: a streaming tracker (exponential --decay or a sliding\n\
     --window of epochs) snapshots the drifting mix, the incumbent is\n\
     re-scored each epoch, a warm re-solve runs when its objective-(6)\n\
     regression over a fresh bound exceeds --drift-threshold, and the\n\
     resulting migration plan is applied on a --rows rows/fragment\n\
     deployment whose byte meter must equal the plan estimate exactly.\n\
     Migrations are batched (--migration-batch-bytes caps the install\n\
     bytes per batch) through a write-ahead journal; re-solves wait for\n\
     --hysteresis consecutive triggered epochs, --amortize-epochs vetoes\n\
     plans whose movement cost exceeds the projected savings horizon,\n\
     and failed migrations roll back and retry with exponential backoff\n\
     until --max-retries is exhausted, after which the watcher serves\n\
     the incumbent in degraded mode (exit code 1 if still degraded at\n\
     the end of the run).\n\
     Live health (watch and replay): --health-out writes a combined\n\
     time-series + alert snapshot (JSON, rewritten each epoch/pass) from\n\
     a fixed-capacity sample ring ticked on the run's logical clock;\n\
     built-in rules watch SA acceptance collapse, model error out of\n\
     bound, degraded-mode entry and migration retry build-up, and\n\
     --rules <file> swaps in declarative JSON rules (threshold /\n\
     rate-of-change / absence with for_ticks hysteresis). --alerts-exit\n\
     exits non-zero while a critical alert is still firing.\n\
     --flight-dir arms the crash flight recorder: the last trace records\n\
     ride in a bounded ring and are dumped as flight_<point>.jsonl when\n\
     a fault point trips or the process panics. `vpart monitor` renders\n\
     the alert timeline of a recorded trace (bit-identical to the\n\
     snapshot's transition history), re-evaluates rules over the sample\n\
     ring (--metrics <health.json> or rebuilt from epoch spans), and\n\
     with --follow tails the trace file printing alert edges as they\n\
     land; `vpart inspect ... --health <file>` merges the snapshot's\n\
     degraded-epoch and alert history into the inspection report.\n\
     Observability: --trace-out records a structured span/event trace\n\
     (JSONL; per-chain annealing spans, per-epoch watch spans) and\n\
     --metrics-out a Prometheus-style text exposition (sa_moves_total,\n\
     sa_acceptance_ratio, solve_wall_seconds, watch_epochs_total,\n\
     engine_migration_bytes_total, ...). Both are off by default and\n\
     `vpart inspect <trace.jsonl>` renders a recorded trace as a\n\
     per-chain convergence table and an epoch timeline;\n\
     `vpart inspect --journal <file>` summarizes a migration journal\n\
     (boundary, byte meters, rollback state) and detects corruption\n\
     (checksum mismatch, truncation, illegal record sequences).\n\
     Defaults: p = 8 (paper), lambda = 0.9 (see DESIGN.md on the\n\
     paper's λ), algo = sa, restarts = 1, threads = 1,\n\
     stats-format = pgss-csv; watch: interval = 2, decay = 0.5,\n\
     drift-threshold = 0.05, rows = 64, restarts = 4, threads = 4,\n\
     hysteresis = 1, amortize-epochs = 0 (off), max-retries = 3,\n\
     migration-batch-bytes = unlimited; replay: threads = 4,\n\
     shards = 32, rows = 256, txns = 1000, duration = 0 (one\n\
     deterministic pass), seed = 42, skew = uniform."
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}", args[i]))?;
        match key {
            "disjoint" | "layout" | "json" | "lenient" | "strict" | "follow" | "alerts-exit" => {
                flags.insert(key.to_owned(), "true".to_owned());
                i += 1;
            }
            _ => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                flags.insert(key.to_owned(), value.clone());
                i += 2;
            }
        }
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: {v:?}")),
    }
}

fn ingest_options(flags: &HashMap<String, String>) -> Result<IngestOptions, String> {
    let defaults = IngestOptions::default();
    let mut opts = IngestOptions::default()
        .with_text_width(get(flags, "text-width", defaults.text_width)?)
        .with_default_rows(get(flags, "default-rows", defaults.default_rows)?)
        .with_sample_rate(get(flags, "sample-rate", defaults.sample_rate)?)
        .with_confidence_min_calls(get(flags, "confidence-min", defaults.confidence_min_calls)?);
    if let Some(name) = flags.get("name") {
        opts = opts.with_name(name.clone());
    }
    if flags.contains_key("lenient") {
        opts = opts.lenient();
    }
    Ok(opts)
}

/// Ingests `--schema` plus either `--log` or `--stats`/`--stats-format`
/// per the shared flag conventions (the name defaults to the schema path;
/// `--lenient`/`--text-width`/`--sample-rate` apply).
fn run_ingest(flags: &HashMap<String, String>) -> Result<vpart::ingest::Ingestion, String> {
    let schema_path = flags
        .get("schema")
        .ok_or_else(|| "--schema is required".to_owned())?;
    let schema_sql = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let mut opts = ingest_options(flags)?;
    if !flags.contains_key("name") {
        opts = opts.with_name(schema_path.clone());
    }
    match (flags.get("log"), flags.get("stats")) {
        (Some(_), Some(_)) => Err("--log and --stats are mutually exclusive".to_owned()),
        (Some(log_path), None) => {
            let log = std::fs::read_to_string(log_path)
                .map_err(|e| format!("cannot read {log_path}: {e}"))?;
            vpart::ingest::ingest(&schema_sql, &log, &opts).map_err(|e| e.to_string())
        }
        (None, Some(stats_path)) => {
            let format_name = flags.get("stats-format").map(String::as_str);
            let format = match format_name {
                None => StatsFormat::PgssCsv,
                Some(name) => StatsFormat::parse(name).ok_or_else(|| {
                    format!("unknown --stats-format {name:?} (pgss-csv|pgss-json|perf-schema)")
                })?,
            };
            let dump = std::fs::read_to_string(stats_path)
                .map_err(|e| format!("cannot read {stats_path}: {e}"))?;
            vpart::ingest::ingest_stats(&schema_sql, &dump, format, &opts)
                .map_err(|e| e.to_string())
        }
        (None, None) => Err("--schema also needs --log or --stats".to_owned()),
    }
}

/// Ingests for `solve`, printing the loss/confidence report to stderr.
fn ingest_from_flags(flags: &HashMap<String, String>) -> Result<Instance, String> {
    let out = run_ingest(flags)?;
    if !out.report.is_lossless() || out.report.has_diagnostics() {
        eprint!("{}", out.report);
    }
    Ok(out.instance)
}

fn load_instance(flags: &HashMap<String, String>) -> Result<Instance, String> {
    if flags.contains_key("schema") {
        return ingest_from_flags(flags);
    }
    let name = flags
        .get("instance")
        .ok_or_else(|| "--instance (or --schema/--log) is required".to_owned())?;
    if let Some(ins) = vpart::instances::by_name(name) {
        return Ok(ins);
    }
    // Fall back to an instance JSON file (the `vpart ingest --out` format).
    if std::path::Path::new(name).exists() {
        let json = std::fs::read_to_string(name).map_err(|e| format!("cannot read {name}: {e}"))?;
        return serde_json::from_str(&json)
            .map_err(|e| format!("{name} is not a valid instance file: {e}"));
    }
    Err(format!(
        "unknown instance {name:?} (not a catalog name, not a file); try `vpart list`"
    ))
}

/// An enabled [`Obs`] handle when any observability sink was requested
/// (`--trace-out`, `--metrics-out`, `--health-out`, `--alerts-exit`,
/// `--rules`, `--flight-dir`), else the inert disabled handle (zero
/// hot-path cost).
fn obs_from_flags(flags: &HashMap<String, String>) -> Obs {
    let sinks = [
        "trace-out",
        "metrics-out",
        "health-out",
        "alerts-exit",
        "rules",
        "flight-dir",
    ];
    if sinks.iter().any(|k| flags.contains_key(*k)) {
        Obs::enabled()
    } else {
        Obs::disabled()
    }
}

/// A [`HealthMonitor`] when a health flag (`--health-out`,
/// `--alerts-exit`, `--rules`) was given. `--rules FILE` replaces the
/// built-in rule set with declarative rules parsed from JSON.
fn health_from_flags(flags: &HashMap<String, String>) -> Result<Option<HealthMonitor>, String> {
    let wanted = ["health-out", "alerts-exit", "rules"];
    if !wanted.iter().any(|k| flags.contains_key(*k)) {
        return Ok(None);
    }
    let monitor = match flags.get("rules") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let rules = vpart::obs::rules_from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            HealthMonitor::new(vpart::obs::DEFAULT_HEALTH_CAPACITY, rules)?
        }
        None => HealthMonitor::with_builtin_rules(vpart::obs::DEFAULT_HEALTH_CAPACITY),
    };
    Ok(Some(monitor))
}

/// Arms the crash flight recorder when `--flight-dir` was given: the
/// most recent trace records ride in a bounded in-memory ring and are
/// dumped as `<dir>/flight_<point>.jsonl` when a fault point trips or
/// the process panics.
fn arm_flight_from_flags(obs: &Obs, flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(dir) = flags.get("flight-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        obs.arm_flight(
            std::path::Path::new(dir),
            vpart::obs::DEFAULT_FLIGHT_CAPACITY,
        );
        obs.install_flight_panic_hook();
    }
    Ok(())
}

/// Writes the `--health-out` snapshot. Called once per tick so the file
/// on disk is fresh even if the run dies mid-way.
fn write_health_snapshot(
    health: Option<&HealthMonitor>,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    if let (Some(path), Some(h)) = (flags.get("health-out"), health) {
        h.write_snapshot(std::path::Path::new(path))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// The `--alerts-exit` gate: non-zero exit when any critical rule is
/// still firing at the end of the run.
fn alerts_exit_check(
    health: Option<&HealthMonitor>,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    if !flags.contains_key("alerts-exit") {
        return Ok(());
    }
    let Some(h) = health else {
        return Ok(());
    };
    if h.any_critical_firing() {
        let rules: Vec<String> = h
            .alerts()
            .firing()
            .iter()
            .filter(|(r, _)| r.severity == vpart::obs::Severity::Critical)
            .map(|(r, since)| format!("{} (since tick {since})", r.name))
            .collect();
        return Err(format!(
            "--alerts-exit: critical alert(s) still firing: {}",
            rules.join(", ")
        ));
    }
    Ok(())
}

/// Writes the recorded trace / metrics exposition to the `--trace-out` /
/// `--metrics-out` paths. Notices go to stderr so `--json` stdout stays
/// machine-parseable.
fn write_obs_outputs(obs: &Obs, flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("trace-out") {
        obs.write_trace(std::path::Path::new(path))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote trace {path}");
    }
    if let Some(path) = flags.get("metrics-out") {
        obs.write_metrics(std::path::Path::new(path))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote metrics {path}");
    }
    Ok(())
}

fn cost_config(flags: &HashMap<String, String>) -> Result<CostConfig, String> {
    let cfg = CostConfig::default()
        .with_p(get(flags, "p", 8.0)?)
        .with_lambda(get(flags, "lambda", 0.9)?);
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn cmd_list(flags: HashMap<String, String>) -> Result<(), String> {
    if flags.contains_key("json") {
        let entries: Vec<serde_json::Value> = vpart::instances::names()
            .into_iter()
            .map(|name| {
                let ins = vpart::instances::by_name(name).expect("catalog name resolves");
                serde_json::json!({
                    "name": name,
                    "attrs": ins.n_attrs(),
                    "txns": ins.n_txns(),
                    "tables": ins.n_tables(),
                })
            })
            .collect();
        println!("{}", serde_json::Value::Array(entries));
        return Ok(());
    }
    println!("available instances:");
    for name in vpart::instances::names() {
        let ins = vpart::instances::by_name(name).expect("catalog name resolves");
        println!(
            "  {name:<16} |A| = {:<5} |T| = {:<4} tables = {}",
            ins.n_attrs(),
            ins.n_txns(),
            ins.n_tables()
        );
    }
    Ok(())
}

fn cmd_ingest(flags: HashMap<String, String>) -> Result<(), String> {
    let out = run_ingest(&flags)?;
    let json = serde_json::to_string_pretty(&out.instance).map_err(|e| e.to_string())?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    if flags.contains_key("json") {
        let r = &out.report;
        let confidence: Vec<serde_json::Value> = r
            .confidence
            .iter()
            .map(|c| {
                serde_json::json!({
                    "txn": c.txn,
                    "observed": c.observed,
                    "scaled": c.scaled,
                    "low": c.level == vpart::ingest::ConfidenceLevel::LowConfidence,
                })
            })
            .collect();
        eprintln!(
            "{}",
            serde_json::json!({
                "tables": r.tables,
                "attrs": r.attrs,
                "txns": r.txns,
                "queries": r.queries,
                "statements_seen": r.statements_seen,
                "statements_ingested": r.statements_ingested,
                "txn_occurrences": r.txn_occurrences,
                "skipped": r.skipped.len(),
                "width_fallbacks": r.width_fallbacks.len(),
                "row_estimates": r.row_estimates.len(),
                "row_guesses": r.row_estimates.iter().filter(|e| !e.pk_equality).count(),
                "lossless": r.is_lossless(),
                "sample_rate": r.sample_rate,
                "confidence": serde_json::Value::Array(confidence),
                "low_confidence": r.low_confidence().count(),
            })
        );
    } else {
        eprint!("{}", out.report);
    }
    if flags.contains_key("strict") && out.report.has_diagnostics() {
        return Err(format!(
            "--strict: ingestion left {} skipped statement(s) and {} low-confidence \
             template(s)",
            out.report.skipped.len(),
            out.report.low_confidence().count()
        ));
    }
    Ok(())
}

fn cmd_solve(flags: HashMap<String, String>) -> Result<(), String> {
    let ins = load_instance(&flags)?;
    let sites: usize = get(&flags, "sites", 2)?;
    let cost = cost_config(&flags)?;
    let seed: u64 = get(&flags, "seed", 0xC0FFEE)?;
    let time_limit: f64 = get(&flags, "time-limit", 300.0)?;
    if time_limit.is_nan() || time_limit <= 0.0 || !time_limit.is_finite() {
        return Err(format!(
            "--time-limit must be a positive number of seconds, got {time_limit}"
        ));
    }
    let restarts: usize = get(&flags, "restarts", 1)?;
    let threads: usize = get(&flags, "threads", 1)?;
    let probe_levels: usize = get(&flags, "probe-levels", 0)?;
    let algo_name = flags.get("algo").map(String::as_str).unwrap_or("sa");
    let disjoint = flags.contains_key("disjoint");
    let obs = obs_from_flags(&flags);

    let algorithm = match algo_name {
        "qp" => {
            let mut qc = QpConfig::with_time_limit(time_limit);
            if disjoint {
                qc = qc.disjoint();
            }
            qc.obs = obs.clone();
            Algorithm::Qp(qc)
        }
        "sa" => {
            if disjoint {
                return Err("--disjoint requires --algo qp".into());
            }
            Algorithm::Sa(SaConfig {
                seed,
                time_limit: std::time::Duration::from_secs_f64(time_limit),
                restarts,
                threads,
                probe_levels: (probe_levels > 0).then_some(probe_levels),
                obs: obs.clone(),
                ..Default::default()
            })
        }
        // The exhaustive solver is tiny-instance ground truth; it stays
        // uninstrumented and --trace-out records an empty trace for it.
        "exact" => Algorithm::Exact(ExactConfig::default()),
        other => return Err(format!("unknown algorithm {other:?} (qp|sa|exact)")),
    };

    let single = Partitioning::single_site(&ins, 1).map_err(|e| e.to_string())?;
    let baseline = evaluate(&ins, &single, &cost).objective4;
    let r = vpart::solve(&ins, sites, &algorithm, &cost).map_err(|e| e.to_string())?;
    write_obs_outputs(&obs, &flags)?;

    if flags.contains_key("json") {
        let restart_stats: Vec<serde_json::Value> = r
            .restarts
            .iter()
            .map(|s| {
                serde_json::json!({
                    "restart": s.restart,
                    "seed": s.seed,
                    "objective6": s.objective6,
                    "objective4": s.objective4,
                    "levels": s.levels,
                    "iterations": s.iterations,
                    "accepted_moves": s.accepted,
                    "rejected_moves": s.rejected,
                    "resyncs": s.resyncs,
                    "mean_abs_delta": s.mean_abs_delta,
                    "elapsed_secs": s.elapsed.as_secs_f64(),
                    "timed_out": s.timed_out,
                    "cut_off": s.cut_off,
                    "winner": s.winner,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "instance": ins.name(),
                "sites": sites,
                "algorithm": algo_name,
                "cost": r.breakdown.objective4,
                "baseline_single_site": baseline,
                "reduction": 1.0 - r.breakdown.objective4 / baseline,
                "read": r.breakdown.read,
                "write": r.breakdown.write,
                "transfer": r.breakdown.transfer,
                "max_site_work": r.breakdown.max_work,
                "optimal": r.is_optimal(),
                "elapsed_secs": r.elapsed.as_secs_f64(),
                "restarts": serde_json::Value::Array(restart_stats),
                "partitioning": r.partitioning,
            })
        );
        return Ok(());
    }

    println!("instance        {}", ins.name());
    println!("sites           {sites}");
    println!("algorithm       {algo_name} ({})", r.detail);
    println!("cost (obj 4)    {:.1}", r.breakdown.objective4);
    println!("  read          {:.1}", r.breakdown.read);
    println!("  write         {:.1}", r.breakdown.write);
    println!(
        "  transfer      {:.1} (p = {})",
        r.breakdown.transfer, cost.p
    );
    println!("max site work   {:.1}", r.breakdown.max_work);
    println!("single site     {baseline:.1}");
    println!(
        "reduction       {:.1}%{}",
        (1.0 - r.breakdown.objective4 / baseline) * 100.0,
        if r.is_optimal() {
            " (proven optimal)"
        } else {
            ""
        }
    );
    println!("elapsed         {:.2?}", r.elapsed);
    if r.restarts.len() > 1 {
        println!(
            "restarts        (best of {}, per-chain budget)",
            r.restarts.len()
        );
        for s in &r.restarts {
            println!(
                "  #{:<2} seed {:<12} obj6 {:>14.1}  {:>7} iters  {:.2?}{}{}",
                s.restart,
                s.seed,
                s.objective6,
                s.iterations,
                s.elapsed,
                if s.timed_out {
                    "  [timed out]"
                } else if s.cut_off {
                    "  [cut at probe]"
                } else {
                    ""
                },
                if s.winner { "  <- winner" } else { "" }
            );
        }
    }
    if flags.contains_key("layout") {
        println!("\n{}", report::render_partitioning(&ins, &r.partitioning));
    } else {
        println!("\n{}", report::render_summary(&ins, &r.partitioning));
    }
    Ok(())
}

fn cmd_simulate(flags: HashMap<String, String>) -> Result<(), String> {
    let ins = load_instance(&flags)?;
    let sites: usize = get(&flags, "sites", 2)?;
    let rounds: usize = get(&flags, "rounds", 5)?;
    let seed: u64 = get(&flags, "seed", 0xC0FFEE)?;
    let cost = cost_config(&flags)?;

    let r = SaSolver::new(SaConfig {
        seed,
        ..Default::default()
    })
    .solve(&ins, sites, &cost)
    .map_err(|e| e.to_string())?;
    let predicted = &r.breakdown;
    let mut dep = Deployment::new(&ins, &r.partitioning, 64).map_err(|e| e.to_string())?;
    let measured = dep
        .execute(&Trace::uniform(&ins, rounds))
        .map_err(|e| e.to_string())?;
    let k = rounds as f64;
    let t = measured.totals();

    println!("instance {} on {sites} sites, {rounds} rounds", ins.name());
    println!("                 predicted(×{rounds})   measured");
    println!(
        "bytes read       {:>14.1} {:>14.1}",
        k * predicted.read,
        t.bytes_read
    );
    println!(
        "bytes written    {:>14.1} {:>14.1}",
        k * predicted.write,
        t.bytes_written
    );
    println!(
        "bytes shipped    {:>14.1} {:>14.1}",
        k * predicted.transfer,
        measured.transfer_bytes
    );
    println!(
        "objective (4)    {:>14.1} {:>14.1}",
        k * predicted.objective4,
        measured.measured_objective4(cost.p)
    );
    println!(
        "single-sited executions: {}/{} ({:.0}%)",
        measured.single_sited_executions,
        measured.executions,
        measured.single_sited_ratio() * 100.0
    );
    println!("stored bytes across sites: {}", dep.stored_bytes());
    Ok(())
}

/// Loads `--partitioning`: either a bare [`Partitioning`] JSON or a
/// `vpart solve --json` output (its `partitioning` field).
fn load_partitioning(path: &str, ins: &Instance) -> Result<Partitioning, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&json).map_err(|e| format!("{path} is not JSON: {e}"))?;
    let inner = match value.get("partitioning") {
        Some(p) => p.clone(),
        None => value,
    };
    let part: Partitioning = serde_json::from_value(&inner)
        .map_err(|e| format!("{path} holds no partitioning (bare or under `partitioning`): {e}"))?;
    part.validate(ins, false)
        .map_err(|e| format!("{path} does not fit this instance: {e}"))?;
    Ok(part)
}

fn cmd_replay(flags: HashMap<String, String>) -> Result<(), String> {
    use vpart::core::predicted_txn_bytes;
    use vpart::engine::{
        FaultInjector, PredictedBytes, ReplayConfig, ReplayDeployment, ReplayStream, RowSkew,
    };
    use vpart::online::{OnlineWorkload, TrackerConfig};

    let ins = load_instance(&flags)?;
    let sites: usize = get(&flags, "sites", 2)?;
    let seed: u64 = get(&flags, "seed", 42)?;
    let threads: usize = get(&flags, "threads", 4)?;
    let shards: usize = get(&flags, "shards", 32)?;
    let rows: usize = get(&flags, "rows", 256)?;
    let txns: usize = get(&flags, "txns", 1000)?;
    let duration: f64 = get(&flags, "duration", 0.0)?;
    if !duration.is_finite() || duration < 0.0 {
        return Err(format!(
            "--duration must be a non-negative number of seconds, got {duration}"
        ));
    }
    let skew = match flags.get("skew") {
        Some(spec) => RowSkew::parse(spec).map_err(|e| e.to_string())?,
        None => RowSkew::Uniform,
    };
    let mut faults = FaultInjector::new(seed);
    if let Some(specs) = flags.get("fault") {
        faults.arm_specs(specs).map_err(|e| e.to_string())?;
    }
    let cost = cost_config(&flags)?;
    let obs = obs_from_flags(&flags);

    let part = match flags.get("partitioning") {
        Some(path) => load_partitioning(path, &ins)?,
        None => {
            SaSolver::new(SaConfig {
                seed,
                ..Default::default()
            })
            .solve(&ins, sites, &cost)
            .map_err(|e| e.to_string())?
            .partitioning
        }
    };

    let stream = match flags.get("rounds") {
        Some(_) => ReplayStream::uniform(&ins, get(&flags, "rounds", 1)?, seed),
        None => ReplayStream::weighted(&ins, txns, seed),
    };

    // The cost model's prediction for one pass of this stream.
    let per_txn = predicted_txn_bytes(&ins, &part, &cost);
    let counts = stream.counts(ins.n_txns());
    let mut predicted = PredictedBytes::default();
    for (t, &c) in counts.iter().enumerate() {
        predicted.read += c as f64 * per_txn[t].read;
        predicted.written += c as f64 * per_txn[t].written;
        predicted.transferred += c as f64 * per_txn[t].transferred;
    }

    let mut dep = ReplayDeployment::new(&ins, &part, rows, shards).map_err(|e| e.to_string())?;
    dep = dep.with_obs(obs.clone());
    if let Some(monitor) = health_from_flags(&flags)? {
        dep = dep.with_health(monitor);
    }
    arm_flight_from_flags(&obs, &flags)?;
    let report = dep
        .replay(
            &stream,
            &ReplayConfig {
                threads,
                min_duration: std::time::Duration::from_secs_f64(duration),
                max_passes: usize::MAX,
                skew,
                faults,
            },
            Some(&predicted),
        )
        .map_err(|e| e.to_string())?;

    // Feed the replayed stream back through the online tracker, the
    // watch loop's engine-speed observation path.
    let mut tracker =
        OnlineWorkload::from_instance(&ins, TrackerConfig::default()).map_err(|e| e.to_string())?;
    let tracker_weight = tracker
        .observe_replay(&ins, &stream.executions)
        .map_err(|e| e.to_string())?;

    write_obs_outputs(&obs, &flags)?;
    write_health_snapshot(dep.health(), &flags)?;
    if let Some(path) = flags.get("health-out") {
        eprintln!("wrote health snapshot {path}");
    }

    let me = report
        .model_error
        .as_ref()
        .ok_or_else(|| "replay always carries a prediction here".to_owned())?;
    let totals = report.totals();
    if flags.contains_key("json") {
        let per_site: Vec<serde_json::Value> = report
            .per_site
            .iter()
            .map(|s| serde_json::json!({"bytes_read": s.bytes_read, "bytes_written": s.bytes_written}))
            .collect();
        let predicted_json = serde_json::json!({
            "read": me.predicted.read,
            "written": me.predicted.written,
            "transferred": me.predicted.transferred,
        });
        let measured_json = serde_json::json!({
            "read": me.measured.read,
            "written": me.measured.written,
            "transferred": me.measured.transferred,
        });
        let error_json = serde_json::json!({
            "read": me.read_ratio,
            "write": me.write_ratio,
            "transfer": me.transfer_ratio,
            "overall": me.overall_ratio,
        });
        // The thread-count-invariant meter block: byte-compare this
        // across `--threads` values to assert determinism.
        let meter_json = serde_json::json!({
            "per_site": serde_json::Value::Array(per_site),
            "transfer_bytes": report.transfer_bytes,
            "rows_read": report.rows_read,
            "rows_written": report.rows_written,
            "stream_len": report.stream_len,
            "checksum": report.checksum,
        });
        println!(
            "{}",
            serde_json::json!({
                "instance": ins.name(),
                "sites": part.n_sites(),
                "threads": report.threads,
                "shards": report.shards,
                "rows_per_table": rows,
                "stream_len": report.stream_len,
                "seed": seed,
                "passes": report.passes,
                "passes_injected": report.passes_injected,
                "txns_replayed": report.txns_replayed,
                "elapsed_secs": report.elapsed.as_secs_f64(),
                "txns_per_sec": report.throughput_txns_per_sec(),
                "predicted": predicted_json,
                "measured": measured_json,
                "model_error_ratio": me.overall_ratio,
                "model_error": error_json,
                "meter": meter_json,
                "tracker_weight": tracker_weight,
                "tracker_templates": tracker.n_templates(),
            })
        );
    } else {
        println!(
            "instance {} on {} sites: {} executions/pass, {} pass(es), {} threads, {} shards",
            ins.name(),
            part.n_sites(),
            report.stream_len,
            report.passes,
            report.threads,
            report.shards
        );
        println!(
            "throughput       {:>14.0} txns/sec ({} txns in {:.3?})",
            report.throughput_txns_per_sec(),
            report.txns_replayed,
            report.elapsed
        );
        println!("                 {:>14} {:>14}", "predicted", "measured");
        println!(
            "bytes read       {:>14.1} {:>14}",
            me.predicted.read, totals.bytes_read
        );
        println!(
            "bytes written    {:>14.1} {:>14}",
            me.predicted.written, totals.bytes_written
        );
        println!(
            "bytes shipped    {:>14.1} {:>14}",
            me.predicted.transferred, report.transfer_bytes
        );
        println!(
            "model error      {:+.4} overall (read {:+.4}, write {:+.4}, transfer {:+.4})",
            me.overall_ratio, me.read_ratio, me.write_ratio, me.transfer_ratio
        );
        println!(
            "rows touched     {} read, {} written; checksum {:#018x}",
            report.rows_read, report.rows_written, report.checksum
        );
        if report.passes_injected > 0 {
            println!(
                "faults           {} injected pass(es) discarded and retried",
                report.passes_injected
            );
        }
        println!(
            "tracker          {} templates fed, total weight {:.1}",
            tracker.n_templates(),
            tracker_weight
        );
    }

    if let Some(bound) = flags.get("error-bound") {
        let bound: f64 = bound
            .parse()
            .map_err(|_| format!("invalid value for --error-bound: {bound:?}"))?;
        if !me.overall_ratio.is_finite() || me.overall_ratio.abs() > bound {
            return Err(format!(
                "model error {:+.4} exceeds --error-bound {bound}",
                me.overall_ratio
            ));
        }
    }
    alerts_exit_check(dep.health(), &flags)?;
    Ok(())
}

/// Ingests one watch phase file against the shared schema.
fn ingest_phase(
    schema_sql: &str,
    path: &str,
    flags: &HashMap<String, String>,
) -> Result<Instance, String> {
    let opts = ingest_options(flags)?.with_name(path.to_string());
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let out = match flags.get("stats") {
        Some(_) => {
            let format = match flags.get("stats-format").map(String::as_str) {
                None => StatsFormat::PgssCsv,
                Some(name) => StatsFormat::parse(name).ok_or_else(|| {
                    format!("unknown --stats-format {name:?} (pgss-csv|pgss-json|perf-schema)")
                })?,
            };
            vpart::ingest::ingest_stats(schema_sql, &text, format, &opts)
        }
        None => vpart::ingest::ingest(schema_sql, &text, &opts),
    }
    .map_err(|e| format!("{path}: {e}"))?;
    if !out.report.is_lossless() || out.report.has_diagnostics() {
        eprint!("{}", out.report);
    }
    Ok(out.instance)
}

fn cmd_watch(flags: HashMap<String, String>) -> Result<(), String> {
    use vpart::online::{DecayMode, OnlineWorkload, TrackerConfig, WatchConfig, Watcher};

    let schema_path = flags
        .get("schema")
        .ok_or_else(|| "--schema is required".to_owned())?;
    let schema_sql = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let phases: Vec<String> = match (flags.get("log"), flags.get("stats")) {
        (Some(_), Some(_)) => return Err("--log and --stats are mutually exclusive".into()),
        (Some(paths), None) | (None, Some(paths)) => paths.split(',').map(str::to_owned).collect(),
        (None, None) => return Err("--schema also needs --log or --stats".into()),
    };

    let sites: usize = get(&flags, "sites", 2)?;
    let cost = cost_config(&flags)?;
    let seed: u64 = get(&flags, "seed", 0xC0FFEE)?;
    let interval: usize = get(&flags, "interval", 2)?;
    let threshold: f64 = get(&flags, "drift-threshold", 0.05)?;
    let rows: usize = get(&flags, "rows", 64)?;
    let restarts: usize = get(&flags, "restarts", 4)?;
    let threads: usize = get(&flags, "threads", 4)?;
    let hysteresis: usize = get(&flags, "hysteresis", 1)?;
    let amortize_epochs: usize = get(&flags, "amortize-epochs", 0)?;
    let max_retries: usize = get(&flags, "max-retries", 3)?;
    let migration_batch_bytes: f64 = get(&flags, "migration-batch-bytes", f64::INFINITY)?;
    let mut faults = vpart::engine::FaultInjector::new(seed);
    if let Some(specs) = flags.get("fault") {
        faults.arm_specs(specs).map_err(|e| e.to_string())?;
    }
    if interval == 0 {
        return Err("--interval must be positive".into());
    }
    let decay = match (flags.get("decay"), flags.get("window")) {
        (Some(_), Some(_)) => return Err("--decay and --window are mutually exclusive".into()),
        (None, Some(_)) => DecayMode::Window {
            epochs: get(&flags, "window", 3usize)?,
        },
        _ => DecayMode::Exponential {
            factor: get(&flags, "decay", 0.5f64)?,
        },
    };

    // Phase instances share the schema by construction (same DDL text).
    let parsed = vpart::ingest::parse_schema(&schema_sql, &ingest_options(&flags)?)
        .map_err(|e| e.to_string())?;
    let tracker = OnlineWorkload::new(
        schema_path.clone(),
        parsed.schema,
        TrackerConfig {
            decay,
            ..TrackerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let obs = obs_from_flags(&flags);
    let mut watcher = Watcher::new(
        tracker,
        WatchConfig {
            sites,
            cost,
            drift: vpart::online::DriftConfig {
                threshold,
                ..Default::default()
            },
            seed,
            rows_per_fragment: rows,
            cold_restarts: restarts,
            threads,
            hysteresis,
            amortize_epochs,
            max_retries,
            migration_batch_bytes,
            faults,
            obs: obs.clone(),
        },
    )
    .map_err(|e| e.to_string())?;
    if let Some(monitor) = health_from_flags(&flags)? {
        watcher = watcher.with_health(monitor);
    }
    arm_flight_from_flags(&obs, &flags)?;

    let json = flags.contains_key("json");
    let mut epochs_json: Vec<serde_json::Value> = Vec::new();
    if !json {
        println!(
            "{:<5} {:<28} {:>9} {:>12} {:>12}  {:<14} {:>14}",
            "epoch", "phase", "score", "incumbent", "bound", "action", "moved-bytes"
        );
    }
    for phase_path in &phases {
        let phase = ingest_phase(&schema_sql, phase_path, &flags)?;
        for _ in 0..interval {
            watcher
                .tracker_mut()
                .observe_instance(&phase)
                .map_err(|e| e.to_string())?;
            let out = watcher.end_epoch(phase_path).map_err(|e| e.to_string())?;
            if let Some(m) = &out.migration {
                if !m.meter_matches {
                    return Err(format!(
                        "epoch {}: migration meter {} != plan estimate {}",
                        out.epoch, m.measured_bytes, m.estimated_bytes
                    ));
                }
            }
            // Overwritten each epoch so the on-disk snapshot stays fresh
            // even if a later epoch crashes the process.
            write_health_snapshot(watcher.health(), &flags)?;
            if json {
                epochs_json.push(serde_json::json!({
                    "epoch": out.epoch,
                    "phase": out.label,
                    "templates": out.templates,
                    "incumbent_objective6": out.incumbent_cost,
                    "bound_objective6": out.bound,
                    "drift_score": out.drift_score,
                    "triggered": out.triggered,
                    "epoch_wall_secs": out.elapsed.as_secs_f64(),
                    "snapshot_attrs": out.snapshot_attrs,
                    "veto": out.veto,
                    "failures": out.failures,
                    "backoff_remaining": out.backoff_remaining,
                    "degraded": out.degraded,
                    "resolve": out.resolve.as_ref().map(|r| serde_json::json!({
                        "cold": r.cold,
                        "objective6": r.objective6,
                        "restarts": r.restarts,
                        "elapsed_secs": r.elapsed.as_secs_f64(),
                    })),
                    "migration": out.migration.as_ref().map(|m| serde_json::json!({
                        "fragment_changes": m.plan.changes.len(),
                        "installs": m.plan.installs(),
                        "drops": m.plan.drops(),
                        "txn_moves": m.plan.txn_moves.len(),
                        "estimated_bytes": m.estimated_bytes,
                        "measured_bytes": m.measured_bytes,
                        "meter_matches": m.meter_matches,
                        "batches": m.batches,
                        "peak_transient_bytes": m.peak_transient_bytes,
                    })),
                }));
            } else {
                let action = match (&out.resolve, &out.migration) {
                    (Some(r), _) if r.cold => "cold solve".to_string(),
                    (Some(_), Some(m)) => {
                        format!("warm+migrate({}i/{}d)", m.plan.installs(), m.plan.drops())
                    }
                    (Some(_), None) => "warm re-solve".to_string(),
                    // A vetoed epoch serves the incumbent; the first words
                    // of the veto reason name why (hysteresis, retry
                    // backoff, amortization, migration failed, degraded).
                    _ => match &out.veto {
                        Some(v) => v
                            .split(&[':', '('][..])
                            .next()
                            .unwrap_or("veto")
                            .trim()
                            .to_string(),
                        None => "keep".to_string(),
                    },
                };
                let moved = out
                    .migration
                    .as_ref()
                    .map(|m| format!("{:.0}", m.measured_bytes))
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "{:<5} {:<28} {:>9.4} {:>12.1} {:>12.1}  {:<14} {:>14}",
                    out.epoch,
                    out.label,
                    out.drift_score,
                    out.incumbent_cost,
                    out.bound,
                    action,
                    moved
                );
            }
        }
    }
    if json {
        println!("{}", serde_json::Value::Array(epochs_json));
    } else if watcher.retries_total() > 0 {
        println!(
            "migrations: {} retry(ies), {} rollback(s)",
            watcher.retries_total(),
            watcher.rollbacks_total()
        );
    }
    write_obs_outputs(&obs, &flags)?;
    if let Some(path) = flags.get("health-out") {
        eprintln!("wrote health snapshot {path}");
    }
    alerts_exit_check(watcher.health(), &flags)?;
    if watcher.is_degraded() {
        return Err(format!(
            "watch ended degraded: {} migration failure(s) exhausted --max-retries {} \
             ({} rollback(s)); the incumbent is still being served",
            watcher.retries_total(),
            max_retries,
            watcher.rollbacks_total()
        ));
    }
    Ok(())
}

/// Loads and renders a `--health-out` snapshot: sample-ring shape, alert
/// transition history, rules still firing, and the degraded epochs.
fn render_health(path: &str) -> Result<String, String> {
    let h = HealthSnapshot::from_path(std::path::Path::new(path))?;
    let mut out = String::new();
    let _ = writeln!(out, "health snapshot  {path}");
    let ticks: Vec<u64> = h.series.samples().map(|s| s.tick).collect();
    match (ticks.first(), ticks.last()) {
        (Some(a), Some(b)) => {
            let _ = writeln!(
                out,
                "samples          {} (ticks {a}..{b}, {} evicted)",
                ticks.len(),
                h.series.evicted()
            );
        }
        _ => {
            let _ = writeln!(out, "samples          0");
        }
    }
    let degraded = h.degraded_ticks();
    if degraded.is_empty() {
        let _ = writeln!(out, "degraded ticks   none");
    } else {
        let list: Vec<String> = degraded.iter().map(u64::to_string).collect();
        let _ = writeln!(
            out,
            "degraded ticks   {} of {}: {}",
            degraded.len(),
            ticks.len(),
            list.join(", ")
        );
    }
    if !h.transitions.is_empty() {
        let _ = writeln!(out, "alert history");
        for (tick, rule, state, severity, value) in &h.transitions {
            let _ = writeln!(
                out,
                "{tick:>6} {state:>10} {severity:>9}  {rule:<28} {value:>12.4}"
            );
        }
    }
    if h.firing.is_empty() {
        let _ = writeln!(out, "firing           none");
    } else {
        let _ = writeln!(out, "firing           {}", h.firing.join(", "));
    }
    Ok(out)
}

/// `vpart inspect <trace.jsonl>`: renders a recorded trace as a per-chain
/// convergence table plus an epoch timeline. `vpart inspect --journal
/// <file>` summarizes a migration journal instead, rejecting corrupt ones.
/// Either form (and the bare form `vpart inspect --health <snap>`) takes
/// `--health <snapshot.json>` to merge in the recorded health view.
fn cmd_inspect(args: &[String]) -> Result<(), String> {
    match args {
        [p] if !p.starts_with("--") => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            let summary = TraceSummary::from_jsonl(&text).map_err(|e| format!("{p}: {e}"))?;
            print!("{}", summary.render());
            Ok(())
        }
        [p, flag, snap] if !p.starts_with("--") && flag == "--health" => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            let summary = TraceSummary::from_jsonl(&text).map_err(|e| format!("{p}: {e}"))?;
            print!("{}", summary.render());
            print!("\n{}", render_health(snap)?);
            Ok(())
        }
        [flag, snap] if flag == "--health" => {
            print!("{}", render_health(snap)?);
            Ok(())
        }
        [flag, p] if flag == "--journal" => inspect_journal(p),
        [f1, p, f2, snap] if f1 == "--journal" && f2 == "--health" => {
            inspect_journal(p)?;
            print!("\n{}", render_health(snap)?);
            Ok(())
        }
        _ => Err(
            "usage: vpart inspect <trace.jsonl> [--health <snap.json>] | \
             vpart inspect --journal <journal.jsonl> [--health <snap.json>] | \
             vpart inspect --health <snap.json>"
                .to_owned(),
        ),
    }
}

/// Renders a migration journal's durable state: plan identity, batch
/// boundary, byte meters and rollback status. Corruption (checksum
/// mismatch, truncated lines, illegal sequences) surfaces as an error.
fn inspect_journal(path: &str) -> Result<(), String> {
    use vpart::engine::{JournalRecord, MigrationJournal};

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let journal = MigrationJournal::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if journal.is_empty() {
        println!("journal {path}: empty (migration not started)");
        return Ok(());
    }
    let st = journal.state();
    let Some(&JournalRecord::Start {
        fingerprint,
        batches,
        rows_per_fragment,
    }) = journal.records().first()
    else {
        // from_jsonl enforces Start-first; an empty journal returned above.
        return Err(format!("{path}: journal does not begin with Start"));
    };
    println!("journal          {path}");
    println!("records          {}", journal.records().len());
    println!("plan fingerprint {fingerprint:#018x}");
    println!("plan batches     {batches} ({rows_per_fragment} rows/fragment)");
    println!(
        "boundary         {} (committed {}, undone {})",
        st.boundary(),
        st.committed,
        st.undone
    );
    println!("bytes committed  {:.1}", st.bytes_committed);
    if st.undone > 0 || st.rolling_back || st.rolled_back {
        println!("bytes undone     {:.1}", st.bytes_undone);
    }
    let status = if st.complete {
        "complete (deployment reached plan.to)".to_string()
    } else if st.rolled_back {
        "rolled back (deployment back at plan.from)".to_string()
    } else if st.rolling_back {
        format!(
            "rolling back ({} of {} committed batch(es) still to undo)",
            st.boundary(),
            st.committed
        )
    } else {
        format!(
            "in flight ({} of {batches} batch(es) committed; resume or roll back)",
            st.committed
        )
    };
    println!("status           {status}");
    Ok(())
}

/// Rebuilds a gauge/counter sample ring from a trace's `watch_epoch`
/// spans so rules can be re-evaluated without a `--metrics` snapshot.
fn store_from_trace(summary: &TraceSummary) -> TimeSeriesStore {
    let mut store = TimeSeriesStore::new(vpart::obs::DEFAULT_HEALTH_CAPACITY);
    for (i, e) in summary.epochs.iter().enumerate() {
        let mut counters = BTreeMap::new();
        counters.insert("watch_epochs_total".to_string(), (i + 1) as f64);
        let mut gauges = BTreeMap::new();
        gauges.insert("watch_drift_score".to_string(), e.drift_score);
        gauges.insert("watch_drift_threshold_margin".to_string(), e.margin);
        gauges.insert(
            "watch_degraded".to_string(),
            if e.degraded { 1.0 } else { 0.0 },
        );
        store.record(e.epoch, counters, gauges);
    }
    store
}

/// Replays a rule set tick-by-tick over a reconstructed sample ring and
/// returns the transitions it would have produced.
fn evaluate_rules_over(
    store: &TimeSeriesStore,
    rules: Vec<vpart::obs::AlertRule>,
) -> Result<Vec<vpart::obs::AlertTransition>, String> {
    let mut engine = vpart::obs::AlertEngine::new(rules)?;
    let mut replayed = TimeSeriesStore::new(store.capacity());
    let obs = Obs::disabled();
    for s in store.samples() {
        replayed.record(s.tick, s.counters.clone(), s.gauges.clone());
        engine.evaluate(s.tick, &replayed, &obs);
    }
    Ok(engine.transitions().to_vec())
}

/// `--follow`: tails the trace file, printing each `alert` event as it
/// lands (text columns, or one JSON transition per line with `--json`).
/// `--max-polls` bounds the loop (0 = follow forever); `--poll-ms` sets
/// the poll interval. A truncated/rewritten file restarts from the top.
fn monitor_follow(path: &str, flags: &HashMap<String, String>, json: bool) -> Result<(), String> {
    let poll_ms: u64 = get(flags, "poll-ms", 500u64)?;
    let max_polls: u64 = get(flags, "max-polls", 0u64)?;
    eprintln!("following {path} for alert edges (poll every {poll_ms} ms)");
    let mut offset = 0usize;
    let mut polls = 0u64;
    loop {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        if text.len() < offset {
            offset = 0;
        }
        let new = &text[offset..];
        let complete = new.rfind('\n').map(|i| i + 1).unwrap_or(0);
        for line in new[..complete].lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(v) = serde_json::from_str::<serde_json::Value>(line) else {
                continue;
            };
            if v.get("name").and_then(|n| n.as_str()) != Some("alert") {
                continue;
            }
            let fields = v.get("fields").cloned().unwrap_or(serde_json::Value::Null);
            let s = |k: &str| fields.get(k).and_then(|x| x.as_str()).unwrap_or("");
            let tick = fields.get("tick").and_then(|x| x.as_u64()).unwrap_or(0);
            let value = fields.get("value").and_then(|x| x.as_f64()).unwrap_or(0.0);
            if json {
                println!(
                    "{}",
                    serde_json::json!({
                        "tick": tick,
                        "rule": s("rule"),
                        "state": s("state"),
                        "severity": s("severity"),
                        "value": serde_json::Value::Float(value),
                    })
                );
            } else {
                println!(
                    "{:>6} {:>10} {:>9}  {:<28} {:>12.4}",
                    tick,
                    s("state"),
                    s("severity"),
                    s("rule"),
                    value
                );
            }
        }
        offset += complete;
        polls += 1;
        if max_polls > 0 && polls >= max_polls {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
    Ok(())
}

/// `vpart monitor <trace.jsonl>`: the health view of a recorded trace —
/// the alert timeline (bit-identical to the transitions a live
/// `--health-out` snapshot records), per-epoch degradation, and a rule
/// re-evaluation over the sample ring (`--metrics <snapshot.json>` when
/// given, else one rebuilt from the trace's epoch spans). `--rules FILE`
/// swaps the built-in rule set; `--follow` tails the file instead.
fn cmd_monitor(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: vpart monitor <trace.jsonl> [--follow] [--poll-ms <n>] \
                         [--max-polls <n>] [--metrics <snapshot.json>] [--rules <file>] [--json]";
    let Some((path, rest)) = args.split_first() else {
        return Err(USAGE.to_owned());
    };
    if path.starts_with("--") {
        return Err(USAGE.to_owned());
    }
    let flags = parse_flags(rest)?;
    let json = flags.contains_key("json");
    if flags.contains_key("follow") {
        return monitor_follow(path, &flags, json);
    }

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let summary = TraceSummary::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    let health = match flags.get("metrics") {
        Some(p) => Some(HealthSnapshot::from_path(std::path::Path::new(p))?),
        None => None,
    };
    let rules = match flags.get("rules") {
        Some(p) => {
            let t = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            vpart::obs::rules_from_json(&t).map_err(|e| format!("{p}: {e}"))?
        }
        None => vpart::obs::builtin_rules(),
    };
    let store = match &health {
        Some(h) => h.series.clone(),
        None => store_from_trace(&summary),
    };
    let rule_eval = evaluate_rules_over(&store, rules)?;

    if json {
        let alerts: Vec<serde_json::Value> = summary
            .alerts
            .iter()
            .map(AlertEvent::to_transition_json)
            .collect();
        let firing: Vec<serde_json::Value> = summary
            .firing_rules()
            .iter()
            .map(|r| serde_json::Value::String((*r).to_string()))
            .collect();
        let epochs: Vec<serde_json::Value> = summary
            .epochs
            .iter()
            .map(|e| {
                serde_json::json!({
                    "epoch": e.epoch,
                    "drift_score": e.drift_score,
                    "margin": e.margin,
                    "triggered": e.triggered,
                    "degraded": e.degraded,
                })
            })
            .collect();
        let eval_json: Vec<serde_json::Value> = rule_eval.iter().map(|t| t.to_json()).collect();
        let health_json = match &health {
            Some(h) => {
                let transitions: Vec<serde_json::Value> = h
                    .transitions
                    .iter()
                    .map(|(tick, rule, state, severity, value)| {
                        serde_json::json!({
                            "tick": tick,
                            "rule": rule,
                            "state": state,
                            "severity": severity,
                            "value": serde_json::Value::Float(*value),
                        })
                    })
                    .collect();
                serde_json::json!({
                    "samples": h.series.len(),
                    "evicted": h.series.evicted(),
                    "degraded_ticks": h.degraded_ticks(),
                    "firing": h.firing,
                    "transitions": serde_json::Value::Array(transitions),
                })
            }
            None => serde_json::Value::Null,
        };
        println!(
            "{}",
            serde_json::json!({
                "trace": serde_json::json!({
                    "records": summary.records,
                    "spans": summary.spans,
                    "events": summary.events,
                }),
                "alerts": serde_json::Value::Array(alerts),
                "firing": serde_json::Value::Array(firing),
                "epochs": serde_json::Value::Array(epochs),
                "rule_eval": serde_json::Value::Array(eval_json),
                "health": health_json,
            })
        );
        return Ok(());
    }

    print!("{}", summary.render());
    if !rule_eval.is_empty() {
        println!("\nrule re-evaluation over sample ring");
        for t in &rule_eval {
            println!(
                "{:>6} {:>10} {:>9}  {:<28} {:>12.4}",
                t.tick,
                t.state,
                t.severity.as_str(),
                t.rule,
                t.value
            );
        }
    }
    if let Some(p) = flags.get("metrics") {
        print!("\n{}", render_health(p)?);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "list" => parse_flags(&args[1..]).and_then(cmd_list),
        "solve" => parse_flags(&args[1..]).and_then(cmd_solve),
        "ingest" => parse_flags(&args[1..]).and_then(cmd_ingest),
        "simulate" => parse_flags(&args[1..]).and_then(cmd_simulate),
        "replay" => parse_flags(&args[1..]).and_then(cmd_replay),
        "watch" => parse_flags(&args[1..]).and_then(cmd_watch),
        "inspect" => cmd_inspect(&args[1..]),
        "monitor" => cmd_monitor(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
