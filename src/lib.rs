//! # vpart — vertical partitioning of relational OLTP databases
//!
//! A production-quality reproduction of Amossen, *"Vertical partitioning of
//! relational OLTP databases using integer programming"* (ICDE Workshops
//! 2010): given a schema, a workload of transactions and a number of sites,
//! find a distribution of attributes (with replication) and transactions to
//! sites that preserves single-sitedness of reads and minimizes bytes
//! read/written/transferred.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — schemas, workloads, instances, partitionings,
//! * [`core`] — the cost model and the QP / SA / exhaustive solvers,
//! * [`instances`] — TPC-C v5 and the paper's random instance classes,
//! * [`ingest`] — SQL DDL + workload ingestion into instances (query
//!   logs, `pg_stat_statements` / `performance_schema` dumps),
//! * [`engine`] — an H-store-like row-store simulator validating the
//!   model, plus the production-rate trace-replay load harness
//!   (`vpart replay`: true-byte meters vs the cost model's prediction),
//!   crash-safe batched migrations through a write-ahead journal, and
//!   deterministic seeded fault injection (`--fault`),
//! * [`online`] — adaptive repartitioning: streaming workload tracking,
//!   drift-triggered warm re-solves and minimum-movement migration plans,
//!   with hysteresis, movement-cost amortization, retry backoff and
//!   degraded-mode fallbacks around the migration machinery,
//! * [`ilp`] — the from-scratch MILP solver substrate,
//! * [`obs`] — observability: metrics registry, structured tracing and
//!   trace inspection (`--trace-out` / `--metrics-out` / `vpart inspect`).
//!
//! ## Quick start
//!
//! ```
//! use vpart::prelude::*;
//!
//! let instance = vpart::instances::tpcc();
//! let cost = CostConfig::default();            // p = 8, λ = 0.9
//! let report = SaSolver::new(SaConfig::fast_deterministic(42))
//!     .solve(&instance, 2, &cost)
//!     .unwrap();
//! let baseline = Partitioning::single_site(&instance, 1).unwrap();
//! assert!(report.cost() < vpart::core::evaluate(&instance, &baseline, &cost).objective4);
//! ```

pub use vpart_core as core;
pub use vpart_engine as engine;
pub use vpart_ilp as ilp;
pub use vpart_ingest as ingest;
pub use vpart_instances as instances;
pub use vpart_model as model;
pub use vpart_obs as obs;
pub use vpart_online as online;

use crate::core::{CoreError, CostConfig, SolveReport};
use crate::model::Instance;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use crate::core::exact::{ExactConfig, ExactSolver};
    pub use crate::core::qp::{QpConfig, QpSolver};
    pub use crate::core::sa::{SaConfig, SaSolver};
    pub use crate::core::{
        evaluate, CostBreakdown, CostConfig, IncrementalCost, RestartStat, SolveReport,
        WriteAccounting,
    };
    pub use crate::engine::{
        BatchedMigrationReport, Deployment, FaultInjector, FaultTrigger, JournalRecord,
        JournalState, MigrationJournal, MigrationReport, PredictedBytes, ReplayConfig,
        ReplayDeployment, ReplayModelError, ReplayReport, ReplayStream, RowSkew, Trace,
    };
    pub use crate::ingest::{
        ConfidenceLevel, IngestError, IngestOptions, IngestReport, Ingestion, StatsFormat,
        WorkloadFrontend,
    };
    pub use crate::model::{
        AttrId, BatchedMigrationPlan, Instance, MigrationBatch, MigrationPlan, Partitioning,
        QueryId, Schema, SiteId, TableId, TxnId, Workload,
    };
    pub use crate::obs::{Obs, TraceSummary};
    pub use crate::online::{
        DecayMode, DriftConfig, OnlineWorkload, TrackerConfig, WatchConfig, Watcher,
    };
    pub use crate::Algorithm;
}

/// Algorithm selector for the high-level [`solve`] helper (and the CLI).
#[derive(Debug, Clone)]
pub enum Algorithm {
    /// The exact linearized-MIP solver (§2).
    Qp(core::qp::QpConfig),
    /// The simulated-annealing heuristic (§3).
    Sa(core::sa::SaConfig),
    /// Exhaustive enumeration (tiny instances; ground truth for tests).
    Exact(core::exact::ExactConfig),
}

impl Algorithm {
    /// Default QP configuration.
    pub fn qp() -> Self {
        Self::Qp(core::qp::QpConfig::default())
    }

    /// Default (seeded) SA configuration.
    pub fn sa(seed: u64) -> Self {
        Self::Sa(core::sa::SaConfig {
            seed,
            ..Default::default()
        })
    }

    /// Multi-start SA: `restarts` independent chains (seeds
    /// `seed..seed + restarts`) over at most `threads` OS threads, merged
    /// deterministically (best objective (6), ties to the lowest seed).
    pub fn sa_multi_start(seed: u64, restarts: usize, threads: usize) -> Self {
        Self::Sa(core::sa::SaConfig {
            seed,
            restarts,
            threads,
            ..Default::default()
        })
    }

    /// Warm re-solve: a single SA chain annealed from `incumbent` instead
    /// of a random start (the online repartitioning repair step). The
    /// result's objective (6) never regresses below the incumbent's, and
    /// the solve costs a fraction of a cold multi-start.
    pub fn resolve_from(incumbent: &model::Partitioning, seed: u64) -> Self {
        Self::Sa(core::sa::SaConfig::fast_deterministic(seed).warm_started(incumbent.clone()))
    }
}

/// One-call solve: partitions `instance` over `n_sites` with the chosen
/// algorithm under `cost`.
pub fn solve(
    instance: &Instance,
    n_sites: usize,
    algorithm: &Algorithm,
    cost: &CostConfig,
) -> Result<SolveReport, CoreError> {
    match algorithm {
        Algorithm::Qp(cfg) => core::qp::QpSolver::new(cfg.clone()).solve(instance, n_sites, cost),
        Algorithm::Sa(cfg) => core::sa::SaSolver::new(cfg.clone()).solve(instance, n_sites, cost),
        Algorithm::Exact(cfg) => {
            core::exact::ExactSolver::new(cfg.clone()).solve(instance, n_sites, cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_level_solve_dispatches() {
        let ins = instances::by_name("rndBt4x15").unwrap();
        let cost = CostConfig::default();
        let sa = solve(&ins, 2, &Algorithm::sa(1), &cost).unwrap();
        sa.partitioning.validate(&ins, false).unwrap();
        // Warm-start the QP with the SA solution: the dominance assertion
        // below then holds by construction (the solver never returns worse
        // than its warm start), independent of the MIP gap and of the §4
        // reduction's λ<1 inexactness.
        let qc = core::qp::QpConfig {
            warm_start: Some(sa.partitioning.clone()),
            ..core::qp::QpConfig::with_time_limit(60.0)
        };
        let qp = solve(&ins, 2, &Algorithm::Qp(qc), &cost).unwrap();
        qp.partitioning.validate(&ins, false).unwrap();
        assert!(qp.breakdown.objective6 <= sa.breakdown.objective6 + 1e-9);
    }

    #[test]
    fn resolve_from_never_regresses_below_its_incumbent() {
        let ins = instances::by_name("rndBt4x15").unwrap();
        let cost = CostConfig::default();
        let cold = solve(&ins, 2, &Algorithm::sa(1), &cost).unwrap();
        let warm = solve(
            &ins,
            2,
            &Algorithm::resolve_from(&cold.partitioning, 2),
            &cost,
        )
        .unwrap();
        warm.partitioning.validate(&ins, false).unwrap();
        assert!(warm.breakdown.objective6 <= cold.breakdown.objective6 + 1e-9);
    }
}
